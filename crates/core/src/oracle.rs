//! The `Is-interesting` oracle: the paper's model of computation.
//!
//! Section 3: *"Assume the only way of getting information from the
//! database is by asking questions of the form* **Is-interesting**: *is the
//! sentence φ interesting, i.e., does q(r, φ) hold?"* Every algorithm in
//! this workspace accesses data exclusively through [`InterestOracle`], so
//! the query counts the theorems bound are measured exactly, and the same
//! algorithm code serves frequent sets, keys, and monotone-function
//! learning.

use std::collections::HashMap;

use dualminer_bitset::AttrSet;
use dualminer_obs::Meter;

/// An interestingness predicate `q(r, ·)` over a fixed attribute universe.
///
/// Implementations must be **monotone** in the paper's sense: if `x` is
/// interesting, every subset of `x` is interesting (under representation as
/// sets the specialization order is `⊆`, with supersets more *specific*).
/// [`check_monotone`] spot-checks the property; the concrete oracles in the
/// `mining`, `fdep` and `learning` crates are monotone by construction.
///
/// Methods take `&mut self` so implementations can count, memoize, or
/// stream from a database cursor.
pub trait InterestOracle {
    /// Number of attributes in the universe `R`.
    fn universe_size(&self) -> usize;

    /// The `Is-interesting` query: does `q(r, x)` hold?
    fn is_interesting(&mut self, x: &AttrSet) -> bool;

    /// Batched `Is-interesting`: one verdict per sentence, **in input
    /// order**. The default loops the scalar query; oracles backed by a
    /// remote or vectorized evaluator override it to amortize per-call
    /// overhead. Overrides must be pointwise equal to the scalar loop —
    /// callers account one logical query per element either way, so the
    /// Theorem 10/21 query totals are batch-invariant.
    fn is_interesting_batch(&mut self, xs: &[AttrSet]) -> Vec<bool> {
        xs.iter().map(|x| self.is_interesting(x)).collect()
    }
}

impl<T: InterestOracle + ?Sized> InterestOracle for &mut T {
    fn universe_size(&self) -> usize {
        (**self).universe_size()
    }
    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        (**self).is_interesting(x)
    }
    fn is_interesting_batch(&mut self, xs: &[AttrSet]) -> Vec<bool> {
        (**self).is_interesting_batch(xs)
    }
}

/// A *shared-state* `Is-interesting` oracle: the same predicate as
/// [`InterestOracle`], but answerable through `&self` and safe to query from
/// several threads at once.
///
/// The parallel levelwise evaluator
/// ([`crate::levelwise::levelwise_par`]) requires this trait: one oracle
/// value is shared by every scoped worker, so queries cannot take `&mut
/// self`. Stateless oracles (a planted family, a support threshold over an
/// immutable database) implement it directly; oracles that must count or
/// memoize stay on the `&mut self` trait and the sequential driver.
///
/// The query *semantics* must match the sequential trait: for any oracle
/// implementing both, `is_interesting` must agree regardless of which trait
/// is used — the parallel/sequential equivalence properties rely on it.
pub trait SyncInterestOracle: Sync {
    /// Number of attributes in the universe `R`.
    fn universe_size(&self) -> usize;

    /// The `Is-interesting` query through a shared reference.
    fn is_interesting(&self, x: &AttrSet) -> bool;

    /// Batched `Is-interesting` through a shared reference: one verdict
    /// per sentence, **in input order**. Same contract as
    /// [`InterestOracle::is_interesting_batch`]: overrides must be
    /// pointwise equal to the scalar loop, and callers account one
    /// logical query per element.
    fn is_interesting_batch(&self, xs: &[AttrSet]) -> Vec<bool> {
        xs.iter().map(|x| self.is_interesting(x)).collect()
    }
}

impl<T: SyncInterestOracle + ?Sized> SyncInterestOracle for &T {
    fn universe_size(&self) -> usize {
        (**self).universe_size()
    }
    fn is_interesting(&self, x: &AttrSet) -> bool {
        (**self).is_interesting(x)
    }
    fn is_interesting_batch(&self, xs: &[AttrSet]) -> Vec<bool> {
        (**self).is_interesting_batch(xs)
    }
}

/// Wraps an oracle with query counting and memoization.
///
/// The paper's theorems count *distinct* `Is-interesting` evaluations
/// against the database; [`CountingOracle::distinct_queries`] measures
/// exactly that (cache misses), while [`CountingOracle::raw_queries`]
/// counts every call. A well-behaved algorithm never repeats a query, so
/// the two coincide — the E2 ablation asserts this for levelwise.
#[derive(Debug)]
pub struct CountingOracle<O> {
    inner: O,
    cache: HashMap<AttrSet, bool>,
    raw: u64,
}

impl<O: InterestOracle> CountingOracle<O> {
    /// Wraps `inner` with a fresh counter and cache.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            cache: HashMap::new(),
            raw: 0,
        }
    }

    /// Number of distinct sentences evaluated against the database.
    pub fn distinct_queries(&self) -> u64 {
        self.cache.len() as u64
    }

    /// Total calls, including cache hits.
    pub fn raw_queries(&self) -> u64 {
        self.raw
    }

    /// Resets both counters and the cache (e.g. between experiments on the
    /// same database).
    pub fn reset(&mut self) {
        self.cache.clear();
        self.raw = 0;
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: InterestOracle> InterestOracle for CountingOracle<O> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        self.raw += 1;
        if let Some(&v) = self.cache.get(x) {
            return v;
        }
        let v = self.inner.is_interesting(x);
        self.cache.insert(x.clone(), v);
        v
    }
}

/// Wraps an oracle so every `Is-interesting` call records one query on a
/// shared [`Meter`].
///
/// This is the glue between oracle-level accounting and the budget layer
/// for algorithms driven through the plain (non-`_ctl`) entry points, and
/// for callers who want `max_queries` to bound *database evaluations*
/// rather than algorithm-level events. The wrapper only records; the
/// algorithm must still poll [`Meter::exceeded`] (the `_ctl` entry points
/// do) for the budget to actually stop the run.
#[derive(Debug)]
pub struct MeteredOracle<'a, O> {
    inner: O,
    meter: &'a Meter,
}

impl<'a, O> MeteredOracle<'a, O> {
    /// Wraps `inner`, recording each query on `meter`.
    pub fn new(inner: O, meter: &'a Meter) -> Self {
        MeteredOracle { inner, meter }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: InterestOracle> InterestOracle for MeteredOracle<'_, O> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        self.meter.record_query();
        self.inner.is_interesting(x)
    }

    fn is_interesting_batch(&mut self, xs: &[AttrSet]) -> Vec<bool> {
        // One logical query per element, metered up front so a batched
        // inner oracle still bills exactly N queries.
        self.meter.record_queries(xs.len() as u64);
        self.inner.is_interesting_batch(xs)
    }
}

impl<O: SyncInterestOracle> SyncInterestOracle for MeteredOracle<'_, O> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn is_interesting(&self, x: &AttrSet) -> bool {
        self.meter.record_query();
        self.inner.is_interesting(x)
    }

    fn is_interesting_batch(&self, xs: &[AttrSet]) -> Vec<bool> {
        self.meter.record_queries(xs.len() as u64);
        self.inner.is_interesting_batch(xs)
    }
}

/// An oracle defined directly by a family of maximal interesting sets:
/// `x` is interesting iff `x ⊆ m` for some member `m`.
///
/// This is the *planted-MTh* oracle: it lets tests and experiments dictate
/// `MTh` exactly and is trivially monotone. (Any monotone predicate over a
/// finite universe has this form — the members are its `MTh`.)
#[derive(Clone, Debug)]
pub struct FamilyOracle {
    n: usize,
    maximal: Vec<AttrSet>,
}

impl FamilyOracle {
    /// Builds the oracle; `maximal` need not be an antichain (dominated
    /// members are harmless and ignored by semantics).
    ///
    /// # Panics
    /// Panics if any member lives in a different universe.
    pub fn new(n: usize, maximal: Vec<AttrSet>) -> Self {
        for m in &maximal {
            assert_eq!(m.universe_size(), n, "member outside universe");
        }
        FamilyOracle { n, maximal }
    }

    /// The defining family.
    pub fn maximal(&self) -> &[AttrSet] {
        &self.maximal
    }
}

impl InterestOracle for FamilyOracle {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        self.maximal.iter().any(|m| x.is_subset(m))
    }
}

impl SyncInterestOracle for FamilyOracle {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_interesting(&self, x: &AttrSet) -> bool {
        self.maximal.iter().any(|m| x.is_subset(m))
    }
}

/// An oracle wrapping a plain closure — handy in tests.
pub struct FnOracle<F> {
    n: usize,
    f: F,
}

impl<F> FnOracle<F> {
    /// Builds an oracle over `n` attributes from the closure `f`.
    ///
    /// The closure must implement a monotone predicate; this is not
    /// checked (use [`check_monotone`] in tests). No bound here: an
    /// `FnMut` closure yields an [`InterestOracle`], an `Fn + Sync` one
    /// additionally a [`SyncInterestOracle`] — a bound on the constructor
    /// would pin closure-kind inference to `FnMut` and lose the latter.
    pub fn new(n: usize, f: F) -> Self {
        FnOracle { n, f }
    }
}

impl<F: FnMut(&AttrSet) -> bool> InterestOracle for FnOracle<F> {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        (self.f)(x)
    }
}

impl<F: Fn(&AttrSet) -> bool + Sync> SyncInterestOracle for FnOracle<F> {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn is_interesting(&self, x: &AttrSet) -> bool {
        (self.f)(x)
    }
}

/// Spot-checks monotonicity: for every given set, every immediate subset of
/// an interesting set must be interesting. Returns the first violation.
pub fn check_monotone<O: InterestOracle>(
    oracle: &mut O,
    samples: &[AttrSet],
) -> Option<(AttrSet, AttrSet)> {
    for x in samples {
        if oracle.is_interesting(x) {
            for sub in dualminer_bitset::ImmediateSubsets::new(x) {
                if !oracle.is_interesting(&sub) {
                    return Some((x.clone(), sub));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(4, v.iter().copied())
    }

    #[test]
    fn family_oracle_semantics() {
        let o = FamilyOracle::new(4, vec![s(&[0, 1, 2]), s(&[1, 3])]);
        assert!(o.is_interesting(&s(&[])));
        assert!(o.is_interesting(&s(&[0, 1])));
        assert!(o.is_interesting(&s(&[1, 3])));
        assert!(!o.is_interesting(&s(&[0, 3])));
        assert!(!o.is_interesting(&s(&[0, 1, 2, 3])));
    }

    #[test]
    fn counting_distinct_vs_raw() {
        let mut o = CountingOracle::new(FamilyOracle::new(4, vec![s(&[0, 1])]));
        assert!(o.is_interesting(&s(&[0])));
        assert!(o.is_interesting(&s(&[0])));
        assert!(!o.is_interesting(&s(&[2])));
        assert_eq!(o.distinct_queries(), 2);
        assert_eq!(o.raw_queries(), 3);
        o.reset();
        assert_eq!(o.distinct_queries(), 0);
        assert_eq!(o.raw_queries(), 0);
    }

    #[test]
    fn fn_oracle_and_monotone_check() {
        // Monotone: |x| ≤ 2.
        let mut good = FnOracle::new(4, |x: &AttrSet| x.len() <= 2);
        let samples: Vec<AttrSet> = vec![s(&[0, 1]), s(&[1, 2, 3]), s(&[])];
        assert_eq!(check_monotone(&mut good, &samples), None);

        // Non-monotone: exactly size 2.
        let mut bad = FnOracle::new(4, |x: &AttrSet| x.len() == 2);
        let violation = check_monotone(&mut bad, &samples);
        assert!(violation.is_some());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut o = FamilyOracle::new(4, vec![s(&[0])]);
        let r: &mut dyn InterestOracle = &mut o;
        assert_eq!(r.universe_size(), 4);
        assert!(r.is_interesting(&s(&[0])));
    }

    #[test]
    #[should_panic(expected = "member outside universe")]
    fn family_oracle_universe_checked() {
        FamilyOracle::new(4, vec![AttrSet::empty(5)]);
    }

    #[test]
    fn metered_oracle_records_on_both_traits() {
        let meter = Meter::unlimited();
        let mut o = MeteredOracle::new(FamilyOracle::new(4, vec![s(&[0, 1])]), &meter);
        assert!(InterestOracle::is_interesting(&mut o, &s(&[0])));
        assert!(!SyncInterestOracle::is_interesting(&o, &s(&[2])));
        assert_eq!(meter.queries(), 2);
        assert_eq!(o.inner().maximal().len(), 1);
        assert_eq!(o.into_inner().maximal().len(), 1);
    }

    #[test]
    fn batch_default_equals_scalar_loop() {
        let mut o = FamilyOracle::new(4, vec![s(&[0, 1, 2]), s(&[1, 3])]);
        let xs: Vec<AttrSet> = (0..16usize)
            .map(|bits| AttrSet::from_indices(4, (0..4).filter(|i| bits >> i & 1 == 1)))
            .collect();
        let scalar: Vec<bool> = xs
            .iter()
            .map(|x| SyncInterestOracle::is_interesting(&o, x))
            .collect();
        assert_eq!(SyncInterestOracle::is_interesting_batch(&o, &xs), scalar);
        assert_eq!(InterestOracle::is_interesting_batch(&mut o, &xs), scalar);
        // Forwarding impls carry the batch method too.
        assert_eq!(
            SyncInterestOracle::is_interesting_batch(&&o, &xs),
            scalar,
            "&T forwarding"
        );
    }

    #[test]
    fn metered_batch_bills_one_query_per_element() {
        let meter = Meter::unlimited();
        let mut o = MeteredOracle::new(FamilyOracle::new(4, vec![s(&[0, 1])]), &meter);
        let xs = vec![s(&[0]), s(&[0, 1]), s(&[2])];
        assert_eq!(
            InterestOracle::is_interesting_batch(&mut o, &xs),
            vec![true, true, false]
        );
        assert_eq!(meter.queries(), 3);
        assert_eq!(
            SyncInterestOracle::is_interesting_batch(&o, &xs),
            vec![true, true, false]
        );
        assert_eq!(meter.queries(), 6);
    }

    #[test]
    fn sync_oracle_agrees_with_mut_trait() {
        let mut o = FamilyOracle::new(4, vec![s(&[0, 1, 2]), s(&[1, 3])]);
        for bits in 0..16usize {
            let x = AttrSet::from_indices(4, (0..4).filter(|i| bits >> i & 1 == 1));
            let shared = SyncInterestOracle::is_interesting(&o, &x);
            assert_eq!(shared, InterestOracle::is_interesting(&mut o, &x), "{x:?}");
        }
        // Shared closures qualify too (and through &O).
        let f = FnOracle::new(4, |x: &AttrSet| x.len() <= 1);
        let by_ref: &dyn SyncInterestOracle = &f;
        assert!(by_ref.is_interesting(&s(&[2])));
        assert!(!by_ref.is_interesting(&s(&[1, 2])));
        assert_eq!(by_ref.universe_size(), 4);
    }
}
