//! Property tests for the framework: both mining algorithms agree with a
//! brute-force theory computation, and every theorem's identity/inequality
//! holds on random planted instances.

use dualminer_bitset::{AttrSet, SubsetsOfSize};
use dualminer_core::border::{
    downward_closure, negative_border_definition, negative_border_via_transversals,
    positive_border, verify_maxth,
};
use dualminer_core::bounds;
use dualminer_core::dualize_advance::dualize_advance;
use dualminer_core::lang::{rank_of_family, subset_lattice_width};
use dualminer_core::levelwise::levelwise;
use dualminer_core::oracle::{CountingOracle, FamilyOracle, InterestOracle};
use dualminer_hypergraph::TrAlgorithm;
use proptest::prelude::*;

const N: usize = 7;

fn arb_family() -> impl Strategy<Value = Vec<AttrSet>> {
    proptest::collection::vec(proptest::collection::vec(0..N, 0..N), 1..5).prop_map(|sets| {
        sets.into_iter()
            .map(|s| AttrSet::from_indices(N, s))
            .collect()
    })
}

/// Brute-force theory: every subset tested directly.
fn brute_theory(family: &[AttrSet]) -> Vec<AttrSet> {
    let mut oracle = FamilyOracle::new(N, family.to_vec());
    let mut th = Vec::new();
    for k in 0..=N {
        for s in SubsetsOfSize::new(N, k) {
            if oracle.is_interesting(&s) {
                th.push(s);
            }
        }
    }
    th
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn levelwise_computes_the_theory(family in arb_family()) {
        let mut oracle = FamilyOracle::new(N, family.clone());
        let run = levelwise(&mut oracle);
        prop_assert_eq!(run.theory, brute_theory(&family));
    }

    #[test]
    fn parallel_levelwise_is_bit_identical(family in arb_family()) {
        // Work-stealing determinism contract: Th, both borders,
        // candidates_per_level and the query total are bit-identical to
        // sequential at every thread count.
        let mut oracle = FamilyOracle::new(N, family.clone());
        let seq = levelwise(&mut oracle);
        let shared = FamilyOracle::new(N, family);
        for threads in [1usize, 2, 4, 8] {
            let par = dualminer_core::levelwise::levelwise_par(&shared, threads);
            prop_assert_eq!(par.theory, seq.theory.clone(), "threads={}", threads);
            prop_assert_eq!(par.positive_border, seq.positive_border.clone(), "threads={}", threads);
            prop_assert_eq!(par.negative_border, seq.negative_border.clone(), "threads={}", threads);
            prop_assert_eq!(par.candidates_per_level, seq.candidates_per_level.clone(), "threads={}", threads);
            prop_assert_eq!(par.queries, seq.queries, "threads={}", threads);
        }
    }

    #[test]
    fn levelwise_borders_are_correct(family in arb_family()) {
        let mut oracle = FamilyOracle::new(N, family.clone());
        let run = levelwise(&mut oracle);
        prop_assert_eq!(run.positive_border.clone(), positive_border(&family));
        let closure = downward_closure(N, &run.positive_border);
        prop_assert_eq!(
            run.negative_border,
            negative_border_definition(N, &closure)
        );
    }

    #[test]
    fn theorem10_query_identity(family in arb_family()) {
        let mut oracle = CountingOracle::new(FamilyOracle::new(N, family));
        let run = levelwise(&mut oracle);
        prop_assert_eq!(run.queries, run.theorem10_count());
        prop_assert_eq!(oracle.distinct_queries(), run.queries);
        prop_assert_eq!(oracle.raw_queries(), run.queries);
    }

    #[test]
    fn theorem12_bound_holds(family in arb_family()) {
        let mut oracle = CountingOracle::new(FamilyOracle::new(N, family));
        let run = levelwise(&mut oracle);
        if !run.positive_border.is_empty() {
            let k = rank_of_family(&run.theory);
            let bound = bounds::theorem12_bound(
                k,
                subset_lattice_width(N),
                run.positive_border.len(),
            );
            prop_assert!(run.queries as u128 <= bound.max(1) + 1,
                "queries {} > bound {}", run.queries, bound);
        }
    }

    #[test]
    fn theorem2_lower_bound_holds_for_both_algorithms(family in arb_family()) {
        let lower = {
            let mut oracle = FamilyOracle::new(N, family.clone());
            let run = levelwise(&mut oracle);
            bounds::theorem2_lower_bound(
                run.positive_border.len(),
                run.negative_border.len(),
            )
        };
        let mut o1 = CountingOracle::new(FamilyOracle::new(N, family.clone()));
        levelwise(&mut o1);
        prop_assert!(o1.distinct_queries() as u128 >= lower);

        let mut o2 = CountingOracle::new(FamilyOracle::new(N, family));
        dualize_advance(&mut o2, TrAlgorithm::Berge);
        prop_assert!(o2.distinct_queries() as u128 >= lower);
    }

    #[test]
    fn dualize_advance_matches_levelwise(family in arb_family()) {
        let mut o1 = FamilyOracle::new(N, family.clone());
        let lw = levelwise(&mut o1);
        for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
            let mut o2 = FamilyOracle::new(N, family.clone());
            let da = dualize_advance(&mut o2, algo);
            prop_assert_eq!(da.maximal, lw.positive_border.clone());
            prop_assert_eq!(da.negative_border, lw.negative_border.clone());
        }
    }

    #[test]
    fn lemma20_per_iteration_bound(family in arb_family()) {
        let mut oracle = FamilyOracle::new(N, family);
        let run = dualize_advance(&mut oracle, TrAlgorithm::FkJointGeneration);
        let bd = run.negative_border.len();
        for (i, it) in run.iterations.iter().enumerate() {
            // Lemma 20: each non-final iteration enumerates at most
            // |Bd⁻(MTh)| sets *before* its counterexample (so ≤ |Bd⁻|+1
            // tested in total); the final (certificate) iteration tests
            // exactly |Bd⁻(MTh)|.
            let cap = if it.counterexample.is_some() { bd + 1 } else { bd };
            prop_assert!(
                it.transversals_tested <= cap,
                "iteration {i}: tested {} > cap {}",
                it.transversals_tested, cap
            );
        }
    }

    #[test]
    fn theorem21_query_bound(family in arb_family()) {
        let mut oracle = CountingOracle::new(FamilyOracle::new(N, family));
        let run = dualize_advance(&mut oracle, TrAlgorithm::FkJointGeneration);
        if !run.maximal.is_empty() {
            let bound = bounds::theorem21_bound(
                run.maximal.len(),
                run.negative_border.len(),
                rank_of_family(&run.maximal).max(1),
                subset_lattice_width(N),
            );
            // +1 for our explicit ∅ seed query.
            prop_assert!(
                run.queries as u128 <= bound + 1,
                "queries {} > bound {}", run.queries, bound
            );
        }
    }

    #[test]
    fn theorem7_identity(family in arb_family()) {
        let maxth = positive_border(&family);
        let closure = downward_closure(N, &maxth);
        let by_def = negative_border_definition(N, &closure);
        for algo in [
            TrAlgorithm::Berge,
            TrAlgorithm::FkJointGeneration,
            TrAlgorithm::LevelwiseLargeEdges,
        ] {
            prop_assert_eq!(
                negative_border_via_transversals(N, &maxth, algo),
                by_def.clone()
            );
        }
    }

    #[test]
    fn verification_corollary4(family in arb_family()) {
        let maxth = positive_border(&family);
        let mut oracle = CountingOracle::new(FamilyOracle::new(N, family.clone()));
        let out = verify_maxth(&mut oracle, &maxth, TrAlgorithm::Berge);
        prop_assert!(out.is_maxth);
        let bd_minus = negative_border_via_transversals(N, &maxth, TrAlgorithm::Berge);
        prop_assert_eq!(out.queries, (maxth.len() + bd_minus.len()) as u64);

        // A perturbed candidate must be rejected.
        let mut wrong = maxth.clone();
        if wrong.len() > 1 {
            wrong.pop();
            let mut oracle = FamilyOracle::new(N, family);
            let out = verify_maxth(&mut oracle, &wrong, TrAlgorithm::Berge);
            prop_assert!(!out.is_maxth);
        }
    }
}
