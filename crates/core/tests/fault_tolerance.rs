//! Fault-tolerance integration tests: deterministic retry, crash-safe
//! checkpoint/resume equivalence, and the seeded fault-injection harness.
//!
//! The contract under test: for every checkpoint a run passes through, a
//! run resumed from that checkpoint produces **bit-identical** results —
//! theory, borders, per-level candidate counts, and total logical query
//! accounting — at every thread count; and a transient-fault schedule
//! absorbed by retries changes nothing but the separately metered
//! retry/fault counters.

use dualminer_bitset::AttrSet;
use dualminer_core::checkpoint::{FaultCtl, ResumeState};
use dualminer_core::dualize_advance::{
    dualize_advance_try_ctl, DualizeAdvanceConfig, DualizeAdvanceRun,
};
use dualminer_core::fallible::FaultyOracle;
use dualminer_core::levelwise::{levelwise_par_try_ctl, levelwise_try_ctl, LevelwiseRun};
use dualminer_core::oracle::FamilyOracle;
use dualminer_hypergraph::TrAlgorithm;
use dualminer_obs::{
    CheckpointError, CheckpointSink, FaultSpec, Json, MemoryCheckpoints, Meter, NoopObserver,
    RetryPolicy, RunCtl, RunError,
};

/// A planted monotone predicate over 7 attributes with overlapping maximal
/// sets — small enough to enumerate, irregular enough to exercise several
/// levels and a non-trivial negative border.
fn planted() -> FamilyOracle {
    let n = 7;
    FamilyOracle::new(
        n,
        vec![
            AttrSet::from_indices(n, [0, 1, 2]),
            AttrSet::from_indices(n, [2, 3]),
            AttrSet::from_indices(n, [1, 4, 5]),
            AttrSet::from_indices(n, [5, 6]),
        ],
    )
}

/// Example 19's matching instance as a family oracle: interesting = misses
/// some edge of the perfect matching, so `Bd⁻ = Tr(H)` with `2^pairs`
/// members — the Dualize-and-Advance stress shape.
fn matching(pairs: usize) -> FamilyOracle {
    let n = 2 * pairs;
    FamilyOracle::new(
        n,
        (0..pairs)
            .map(|i| AttrSet::from_indices(n, [2 * i, 2 * i + 1]).complement())
            .collect(),
    )
}

fn lw_scratch(oracle: &FamilyOracle) -> LevelwiseRun {
    let meter = Meter::unlimited();
    let ctl = RunCtl::new(&meter, &NoopObserver);
    let mut inner = oracle.clone();
    let mut fallible = &mut inner;
    levelwise_try_ctl(&mut fallible, &ctl, &FaultCtl::none(), None)
        .expect("infallible")
        .expect_complete()
}

fn da_scratch(oracle: &FamilyOracle, algo: TrAlgorithm) -> DualizeAdvanceRun {
    let meter = Meter::unlimited();
    let ctl = RunCtl::new(&meter, &NoopObserver);
    let mut inner = oracle.clone();
    let mut fallible = &mut inner;
    dualize_advance_try_ctl(
        &mut fallible,
        algo,
        &DualizeAdvanceConfig::default(),
        1,
        &ctl,
        &FaultCtl::none(),
        None,
    )
    .expect("infallible")
    .expect_complete()
}

fn assert_lw_eq(got: &LevelwiseRun, want: &LevelwiseRun, context: &str) {
    assert_eq!(got.theory, want.theory, "{context}: theory");
    assert_eq!(
        got.positive_border, want.positive_border,
        "{context}: positive border"
    );
    assert_eq!(
        got.negative_border, want.negative_border,
        "{context}: negative border"
    );
    assert_eq!(
        got.candidates_per_level, want.candidates_per_level,
        "{context}: candidates per level"
    );
    assert_eq!(got.queries, want.queries, "{context}: queries");
}

fn assert_da_eq(got: &DualizeAdvanceRun, want: &DualizeAdvanceRun, context: &str) {
    assert_eq!(got.maximal, want.maximal, "{context}: maximal");
    assert_eq!(
        got.negative_border, want.negative_border,
        "{context}: negative border"
    );
    assert_eq!(got.queries, want.queries, "{context}: queries");
}

#[test]
fn levelwise_resume_matches_scratch_from_every_checkpoint() {
    let scratch = lw_scratch(&planted());

    // Fresh run saving at every safe point.
    let sink = MemoryCheckpoints::new();
    {
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
        let mut inner = planted();
        let mut fallible = &mut inner;
        let run = levelwise_try_ctl(&mut fallible, &ctl, &fault, None)
            .expect("no faults injected")
            .expect_complete();
        assert_lw_eq(&run, &scratch, "checkpointing run");
    }
    let saved = sink.all();
    assert!(saved.len() >= 3, "expected one save per level boundary");

    for (i, envelope) in saved.iter().enumerate() {
        let ResumeState::Levelwise(state) =
            ResumeState::from_envelope(envelope).expect("decodable checkpoint")
        else {
            panic!("wrong checkpoint kind");
        };
        for threads in [1usize, 4] {
            let meter = Meter::unlimited();
            let ctl = RunCtl::new(&meter, &NoopObserver);
            let resumed = if threads == 1 {
                let mut inner = planted();
                let mut fallible = &mut inner;
                levelwise_try_ctl(&mut fallible, &ctl, &FaultCtl::none(), Some(state.clone()))
            } else {
                let inner = planted();
                let fallible = &inner;
                levelwise_par_try_ctl(
                    &fallible,
                    threads,
                    &ctl,
                    &FaultCtl::none(),
                    Some(state.clone()),
                )
            }
            .expect("no faults injected")
            .expect_complete();
            assert_lw_eq(
                &resumed,
                &scratch,
                &format!("checkpoint {i}, threads {threads}"),
            );
        }
    }
}

#[test]
fn checkpoint_records_thread_count_and_resume_crosses_thread_counts() {
    let scratch = lw_scratch(&planted());

    // Saving run is parallel at threads = 2; every safe point persisted.
    let sink = MemoryCheckpoints::new();
    {
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
        let inner = planted();
        let fallible = &inner;
        let run = levelwise_par_try_ctl(&fallible, 2, &ctl, &fault, None)
            .expect("no faults injected")
            .expect_complete();
        assert_lw_eq(&run, &scratch, "saving run");
    }
    let saved = sink.all();
    assert!(!saved.is_empty(), "parallel run must checkpoint");

    for (i, envelope) in saved.iter().enumerate() {
        let ResumeState::Levelwise(state) =
            ResumeState::from_envelope(envelope).expect("decodable checkpoint")
        else {
            panic!("wrong checkpoint kind");
        };
        // The envelope payload records the saving run's worker count …
        assert_eq!(state.threads, 2, "checkpoint {i} records thread count");
        // … and a resume at ANY other thread count is bit-identical to
        // scratch (the ordered-merge contract), never an error.
        for threads in [1usize, 2, 4, 8] {
            let meter = Meter::unlimited();
            let ctl = RunCtl::new(&meter, &NoopObserver);
            let inner = planted();
            let fallible = &inner;
            let resumed = levelwise_par_try_ctl(
                &fallible,
                threads,
                &ctl,
                &FaultCtl::none(),
                Some(state.clone()),
            )
            .expect("no faults injected")
            .expect_complete();
            assert_lw_eq(
                &resumed,
                &scratch,
                &format!("checkpoint {i} saved at 2 threads, resumed at {threads}"),
            );
        }
    }
}

#[test]
fn dualize_advance_resume_matches_scratch_from_every_checkpoint() {
    for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
        let scratch = da_scratch(&matching(3), algo);

        let sink = MemoryCheckpoints::new();
        {
            let meter = Meter::unlimited();
            let ctl = RunCtl::new(&meter, &NoopObserver);
            let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
            let mut inner = matching(3);
            let mut fallible = &mut inner;
            let run = dualize_advance_try_ctl(
                &mut fallible,
                algo,
                &DualizeAdvanceConfig::default(),
                1,
                &ctl,
                &fault,
                None,
            )
            .expect("no faults injected")
            .expect_complete();
            assert_da_eq(&run, &scratch, &format!("{algo:?}: checkpointing run"));
        }
        let saved = sink.all();
        assert!(saved.len() >= 3, "{algo:?}: expected several safe points");

        for (i, envelope) in saved.iter().enumerate() {
            let ResumeState::DualizeAdvance(state) =
                ResumeState::from_envelope(envelope).expect("decodable checkpoint")
            else {
                panic!("wrong checkpoint kind");
            };
            let meter = Meter::unlimited();
            let ctl = RunCtl::new(&meter, &NoopObserver);
            let mut inner = matching(3);
            let mut fallible = &mut inner;
            let resumed = dualize_advance_try_ctl(
                &mut fallible,
                algo,
                &DualizeAdvanceConfig::default(),
                1,
                &ctl,
                &FaultCtl::none(),
                Some(state.clone()),
            )
            .expect("no faults injected")
            .expect_complete();
            assert_da_eq(&resumed, &scratch, &format!("{algo:?}: checkpoint {i}"));
        }
    }
}

#[test]
fn levelwise_killed_at_every_query_resumes_identically() {
    let scratch = lw_scratch(&planted());
    let mut aborts = 0u32;
    for k in 0..scratch.queries {
        let sink = MemoryCheckpoints::new();
        let spec = FaultSpec {
            permanent_at: vec![k],
            ..FaultSpec::default()
        };
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
        let mut faulty = FaultyOracle::new(planted(), &spec);
        let aborted = levelwise_try_ctl(&mut faulty, &ctl, &fault, None)
            .expect_err("permanent fault must abort");
        assert!(matches!(aborted.error, RunError::Oracle(ref e) if !e.is_transient()));
        aborts += 1;

        // Resume from the aborted run's own safe point (None before the
        // first boundary = start from scratch) with a healthy oracle.
        let resume = aborted.resume.map(|state| match *state {
            ResumeState::Levelwise(s) => s,
            other => panic!("wrong kind {}", other.kind()),
        });
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let mut inner = planted();
        let mut fallible = &mut inner;
        let resumed = levelwise_try_ctl(&mut fallible, &ctl, &FaultCtl::none(), resume)
            .expect("healthy oracle")
            .expect_complete();
        assert_lw_eq(&resumed, &scratch, &format!("killed at query {k}"));
    }
    assert_eq!(u64::from(aborts), scratch.queries);
}

#[test]
fn dualize_advance_killed_at_every_query_resumes_identically() {
    let algo = TrAlgorithm::FkJointGeneration;
    let scratch = da_scratch(&matching(3), algo);
    for k in 0..scratch.queries {
        let sink = MemoryCheckpoints::new();
        let spec = FaultSpec {
            permanent_at: vec![k],
            ..FaultSpec::default()
        };
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
        let mut faulty = FaultyOracle::new(matching(3), &spec);
        let aborted = dualize_advance_try_ctl(
            &mut faulty,
            algo,
            &DualizeAdvanceConfig::default(),
            1,
            &ctl,
            &fault,
            None,
        )
        .expect_err("permanent fault must abort");
        let resume = aborted.resume.map(|state| match *state {
            ResumeState::DualizeAdvance(s) => s,
            other => panic!("wrong kind {}", other.kind()),
        });
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let mut inner = matching(3);
        let mut fallible = &mut inner;
        let resumed = dualize_advance_try_ctl(
            &mut fallible,
            algo,
            &DualizeAdvanceConfig::default(),
            1,
            &ctl,
            &FaultCtl::none(),
            resume,
        )
        .expect("healthy oracle")
        .expect_complete();
        assert_da_eq(&resumed, &scratch, &format!("killed at query {k}"));
    }
}

#[test]
fn transient_schedule_completes_identically_across_thread_counts() {
    let scratch = lw_scratch(&planted());
    let spec = FaultSpec::parse("seed=42,transient=0.5").expect("valid spec");
    let mut retry_totals = Vec::new();
    for threads in [1usize, 4] {
        let faulty = FaultyOracle::new(planted(), &spec);
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::with_retry(RetryPolicy::retries(3));
        let run = levelwise_par_try_ctl(&faulty, threads, &ctl, &fault, None)
            .expect("transients absorbed by retries")
            .expect_complete();
        assert_lw_eq(&run, &scratch, &format!("threads {threads}"));
        // One logical query per candidate, regardless of retries.
        assert_eq!(meter.queries(), scratch.queries, "threads {threads}");
        assert!(meter.retries() > 0, "seeded schedule must inject something");
        assert_eq!(
            meter.retries(),
            meter.faults(),
            "every transient fault is followed by exactly one (successful) retry"
        );
        retry_totals.push(meter.retries());
    }
    // Content-keyed faults: the injected schedule — and so the retry
    // bill — is identical at every thread count.
    assert_eq!(retry_totals[0], retry_totals[1]);
}

#[test]
fn transient_schedule_on_dualize_advance_completes_identically() {
    let spec = FaultSpec::parse("seed=9,transient=0.4").expect("valid spec");
    for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
        let scratch = da_scratch(&matching(3), algo);
        // The run's `queries` field is the Theorem-21 border accounting;
        // the meter additionally records greedy-extension queries, so the
        // fault-free meter reading is the baseline for "no extra logical
        // queries under retries".
        let scratch_meter = {
            let meter = Meter::unlimited();
            let ctl = RunCtl::new(&meter, &NoopObserver);
            let mut inner = matching(3);
            let mut fallible = &mut inner;
            dualize_advance_try_ctl(
                &mut fallible,
                algo,
                &DualizeAdvanceConfig::default(),
                1,
                &ctl,
                &FaultCtl::none(),
                None,
            )
            .expect("infallible")
            .expect_complete();
            meter.queries()
        };
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::with_retry(RetryPolicy::retries(3));
        let mut faulty = FaultyOracle::new(matching(3), &spec);
        let run = dualize_advance_try_ctl(
            &mut faulty,
            algo,
            &DualizeAdvanceConfig::default(),
            1,
            &ctl,
            &fault,
            None,
        )
        .expect("transients absorbed by retries")
        .expect_complete();
        assert_da_eq(&run, &scratch, &format!("{algo:?}"));
        assert_eq!(meter.queries(), scratch_meter, "{algo:?}");
        assert!(meter.retries() > 0, "{algo:?}");
    }
}

#[test]
fn steal_heavy_skew_with_seeded_faults_matches_sequential() {
    // Adversarial scheduler workload: one giant maximal set — a deep,
    // wide subtree of interesting candidates — among tiny ones, so the
    // worker seeded with the giant range holds nearly all the work and
    // the others must steal. Run at grain 1 to maximize splits/steals,
    // under a seeded content-keyed transient fault schedule absorbed by
    // retries: output AND fault/retry totals must match the sequential
    // run at every thread count.
    let n = 14;
    let family = vec![
        AttrSet::from_indices(n, 0..10),
        AttrSet::from_indices(n, [10]),
        AttrSet::from_indices(n, [11]),
        AttrSet::from_indices(n, [12, 13]),
    ];
    let spec = FaultSpec::parse("seed=7,transient=0.05").unwrap();
    let retry = RetryPolicy::retries(1);

    let seq_meter = Meter::unlimited();
    let ctl = RunCtl::new(&seq_meter, &NoopObserver);
    let mut faulty = FaultyOracle::new(FamilyOracle::new(n, family.clone()), &spec);
    let scratch = levelwise_try_ctl(&mut faulty, &ctl, &FaultCtl::with_retry(retry), None)
        .expect("transients absorbed by retries")
        .expect_complete();
    assert!(seq_meter.faults() > 0, "fault schedule must fire");

    let before = dualminer_parallel::default_grain();
    dualminer_parallel::set_default_grain(1);
    for threads in [2usize, 8] {
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let faulty = FaultyOracle::new(FamilyOracle::new(n, family.clone()), &spec);
        let run = levelwise_par_try_ctl(&faulty, threads, &ctl, &FaultCtl::with_retry(retry), None)
            .expect("transients absorbed by retries")
            .expect_complete();
        assert_lw_eq(
            &run,
            &scratch,
            &format!("steal-heavy skew, threads {threads}"),
        );
        assert_eq!(meter.faults(), seq_meter.faults(), "threads {threads}");
        assert_eq!(meter.retries(), seq_meter.retries(), "threads {threads}");
    }
    dualminer_parallel::set_default_grain(before);
}

#[test]
fn retry_exhaustion_aborts_with_resumable_state() {
    // A burst longer than the retry budget at a call past the first safe
    // point: the run must abort with a transient error and offer resume.
    let spec = FaultSpec {
        burst: Some((5, 10)),
        ..FaultSpec::default()
    };
    let sink = MemoryCheckpoints::new();
    let meter = Meter::unlimited();
    let ctl = RunCtl::new(&meter, &NoopObserver);
    let fault = FaultCtl::checkpointed(RetryPolicy::retries(2), &sink, 1);
    let mut faulty = FaultyOracle::new(planted(), &spec);
    let aborted =
        levelwise_try_ctl(&mut faulty, &ctl, &fault, None).expect_err("burst outlives retries");
    assert!(matches!(aborted.error, RunError::Oracle(ref e) if e.is_transient()));
    assert!(aborted.resume.is_some(), "past the first boundary");
    assert_eq!(meter.retries(), 2, "retry budget fully spent");

    let resume = aborted.resume.map(|state| match *state {
        ResumeState::Levelwise(s) => s,
        other => panic!("wrong kind {}", other.kind()),
    });
    let meter = Meter::unlimited();
    let ctl = RunCtl::new(&meter, &NoopObserver);
    let mut inner = planted();
    let mut fallible = &mut inner;
    let resumed = levelwise_try_ctl(&mut fallible, &ctl, &FaultCtl::none(), resume)
        .expect("healthy oracle")
        .expect_complete();
    assert_lw_eq(&resumed, &lw_scratch(&planted()), "after burst abort");
}

/// A sink whose saves always fail — the crash-safety contract says the run
/// must abort (continuing would silently break the resume guarantee).
struct FailingSink;

impl CheckpointSink for FailingSink {
    fn save(&self, _kind: &str, _payload: &Json) -> Result<(), CheckpointError> {
        Err(CheckpointError::Io("disk full".into()))
    }
}

#[test]
fn failed_checkpoint_save_aborts_the_run() {
    let sink = FailingSink;
    let meter = Meter::unlimited();
    let ctl = RunCtl::new(&meter, &NoopObserver);
    let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, 1);
    let mut inner = planted();
    let mut fallible = &mut inner;
    let aborted =
        levelwise_try_ctl(&mut fallible, &ctl, &fault, None).expect_err("failed save must abort");
    assert!(matches!(aborted.error, RunError::Checkpoint(_)));
}

#[test]
fn checkpoint_cadence_batches_saves() {
    // every=1 saves at each boundary; a huge cadence saves (at most) once
    // after the query counter finally clears it.
    let count_saves = |every: u64| {
        let sink = MemoryCheckpoints::new();
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &NoopObserver);
        let fault = FaultCtl::checkpointed(RetryPolicy::none(), &sink, every);
        let mut inner = planted();
        let mut fallible = &mut inner;
        levelwise_try_ctl(&mut fallible, &ctl, &fault, None)
            .expect("no faults")
            .expect_complete();
        sink.len()
    };
    let dense = count_saves(1);
    let sparse = count_saves(1_000_000);
    assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
}
