//! Canonical input fingerprinting: a streaming FNV-1a-64 hasher plus a
//! row-event builder for content-addressed result caching.
//!
//! The `serve` daemon keys its result cache by a fingerprint of the
//! *parsed, canonicalized* input — the sequence of first-appearance
//! symbol interns, item indices, and row boundaries — never the raw
//! bytes. Two files that differ only in whitespace, comments, or blank
//! lines therefore hash identically and hit the same cache entry, while
//! any change to the data itself (a renamed item, a reordered row, an
//! extra transaction) changes the digest.
//!
//! [`FnvStream`] is the incremental form of the one-shot
//! [`fault::fnv1a64`](crate::fault::fnv1a64) already used for checkpoint
//! checksums and fault keying — same basis, same prime, byte-for-byte the
//! same result on the same byte stream. [`RowFingerprint`] layers the
//! canonical event encoding on top and additionally exposes the digest
//! *after every row*, which is what lets the cache recognize a request
//! whose input extends a cached one by appended rows only (the
//! incremental re-mining fast path): the old input's fingerprint equals
//! the new input's prefix digest at the old row count.
//!
//! Every event is tagged and length-prefixed, so streams cannot collide
//! by re-bracketing (`"ab"` then `"c"` never hashes like `"a"` then
//! `"bc"`, an item index never masquerades as a symbol byte).

use std::fmt;

/// FNV-1a-64 offset basis (the hash of the empty input).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a-64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-64: feed bytes in any number of chunks; the digest
/// equals [`fault::fnv1a64`](crate::fault::fnv1a64) of their
/// concatenation.
#[derive(Clone, Debug)]
pub struct FnvStream {
    state: u64,
}

impl FnvStream {
    /// A fresh stream (digest of nothing = the FNV offset basis).
    pub fn new() -> FnvStream {
        FnvStream { state: FNV_BASIS }
    }

    /// Feeds a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Feeds one `u64` as its 8 little-endian bytes.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// The digest of everything fed so far. Non-consuming: the stream can
    /// keep accepting bytes afterwards, which is how per-row prefix
    /// digests are taken.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl Default for FnvStream {
    fn default() -> Self {
        FnvStream::new()
    }
}

// Event tags. Distinct, and every event's payload is either
// length-prefixed (symbols) or fixed-width (indices), so the encoding is
// prefix-free within a stream.
const TAG_SYMBOL: u8 = 0x53; // 'S'
const TAG_ITEM: u8 = 0x49; // 'I'
const TAG_ROW_END: u8 = 0x52; // 'R'

/// Canonical row-event fingerprint builder.
///
/// Callers replay the parse as a stream of events:
///
/// * [`push_symbol`](RowFingerprint::push_symbol) — a *new* symbol was
///   interned (an item name, an attribute header, a dictionary-coded cell
///   value on first appearance). Fed exactly once per symbol, in
///   first-appearance order, so files agree iff their dictionaries agree.
/// * [`push_item`](RowFingerprint::push_item) — one resolved index
///   (item, vertex, or cell code) in the current row.
/// * [`end_row`](RowFingerprint::end_row) — the current row (transaction,
///   edge, CSV record) is complete.
///
/// The digest after `end_row` number *k* is the fingerprint of the
/// k-row prefix — identical to fingerprinting a file containing only
/// those k rows.
#[derive(Clone, Debug, Default)]
pub struct RowFingerprint {
    stream: FnvStream,
    rows: u64,
}

impl RowFingerprint {
    /// A fresh builder.
    pub fn new() -> RowFingerprint {
        RowFingerprint::default()
    }

    /// Records the interning of a new symbol (length-prefixed, so symbol
    /// boundaries are unambiguous).
    pub fn push_symbol(&mut self, symbol: &str) {
        self.stream.update(&[TAG_SYMBOL]);
        self.stream.update_u64(symbol.len() as u64);
        self.stream.update(symbol.as_bytes());
    }

    /// Records one resolved index in the current row.
    pub fn push_item(&mut self, index: usize) {
        self.stream.update(&[TAG_ITEM]);
        self.stream.update_u64(index as u64);
    }

    /// Closes the current row.
    pub fn end_row(&mut self) {
        self.stream.update(&[TAG_ROW_END]);
        self.rows += 1;
    }

    /// The digest of every event so far. Taken right after an
    /// [`end_row`](RowFingerprint::end_row), this is the prefix
    /// fingerprint at the current row count.
    pub fn digest(&self) -> u64 {
        self.stream.digest()
    }

    /// Rows closed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl fmt::Display for RowFingerprint {
    /// The digest as the fixed-width hex used in protocol events.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fnv1a64;

    #[test]
    fn stream_matches_one_shot_fnv() {
        for input in [
            &b""[..],
            b"a",
            b"hello, world",
            b"\x00\xff\x7f",
            b"the quick brown fox jumps over the lazy dog",
        ] {
            let mut s = FnvStream::new();
            s.update(input);
            assert_eq!(s.digest(), fnv1a64(input), "input {input:?}");
        }
    }

    #[test]
    fn chunking_is_invisible() {
        let bytes = b"segmented vertical store";
        let mut whole = FnvStream::new();
        whole.update(bytes);
        for split in 0..=bytes.len() {
            let mut parts = FnvStream::new();
            parts.update(&bytes[..split]);
            parts.update(&bytes[split..]);
            assert_eq!(parts.digest(), whole.digest(), "split {split}");
        }
    }

    /// Replays a (symbols-per-row, items-per-row) script.
    fn replay(rows: &[(&[&str], &[usize])]) -> RowFingerprint {
        let mut fp = RowFingerprint::new();
        for (symbols, items) in rows {
            for s in *symbols {
                fp.push_symbol(s);
            }
            for &i in *items {
                fp.push_item(i);
            }
            fp.end_row();
        }
        fp
    }

    #[test]
    fn identical_event_streams_hash_equal() {
        let a = replay(&[(&["milk", "bread"], &[0, 1]), (&[], &[1, 0])]);
        let b = replay(&[(&["milk", "bread"], &[0, 1]), (&[], &[1, 0])]);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.rows(), 2);
        assert_eq!(format!("{a}"), format!("{:016x}", b.digest()));
    }

    #[test]
    fn different_data_hashes_differ() {
        let base = replay(&[(&["a", "b"], &[0, 1])]);
        // Renamed symbol.
        let renamed = replay(&[(&["a", "c"], &[0, 1])]);
        // Different row content.
        let reordered = replay(&[(&["a", "b"], &[1, 0])]);
        // Extra row.
        let longer = replay(&[(&["a", "b"], &[0, 1]), (&[], &[0])]);
        assert_ne!(base.digest(), renamed.digest());
        assert_ne!(base.digest(), reordered.digest());
        assert_ne!(base.digest(), longer.digest());
    }

    #[test]
    fn symbol_boundaries_cannot_rebracket() {
        // Length-prefixing keeps {"ab"} and {"a","b"} apart even though
        // the concatenated bytes agree.
        let joined = replay(&[(&["ab"], &[0])]);
        let split = replay(&[(&["a", "b"], &[0])]);
        assert_ne!(joined.digest(), split.digest());
    }

    #[test]
    fn items_and_symbols_are_domain_separated() {
        // A symbol whose bytes spell an item-index encoding must not
        // collide with the index event itself.
        let mut as_symbol = RowFingerprint::new();
        as_symbol.push_symbol("\u{1}\0\0\0\0\0\0\0");
        as_symbol.end_row();
        let mut as_item = RowFingerprint::new();
        as_item.push_item(1);
        as_item.end_row();
        assert_ne!(as_symbol.digest(), as_item.digest());
    }

    #[test]
    fn prefix_digest_equals_prefix_input() {
        // The digest after k rows of the long stream equals the digest of
        // a stream containing only those k rows — the property the
        // appended-rows cache probe relies on.
        let rows: &[(&[&str], &[usize])] = &[
            (&["x", "y"], &[0, 1]),
            (&["z"], &[1, 2]),
            (&[], &[0, 2]),
            (&[], &[2]),
        ];
        let mut long = RowFingerprint::new();
        let mut prefix_digests = Vec::new();
        for (symbols, items) in rows {
            for s in *symbols {
                long.push_symbol(s);
            }
            for &i in *items {
                long.push_item(i);
            }
            long.end_row();
            prefix_digests.push(long.digest());
        }
        for k in 1..=rows.len() {
            let short = replay(&rows[..k]);
            assert_eq!(short.digest(), prefix_digests[k - 1], "prefix {k}");
            assert_eq!(short.rows(), k as u64);
        }
    }
}
