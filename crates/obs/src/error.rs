//! The fault-tolerance error taxonomy: typed oracle failures and the
//! deterministic retry policy.
//!
//! Real deployments reach the database through I/O that can fail — a
//! timed-out connection, a transient storage error, a partition that never
//! heals. The fallible oracle tier (`dualminer-core::fallible`) surfaces
//! those failures as [`OracleError`] values classified as *transient*
//! (retry may succeed) or *permanent* (retrying is pointless). The
//! [`RetryPolicy`] here is the single retry mechanism every driver uses:
//! bounded, jitter-free exponential backoff, so a retried run issues the
//! same logical query sequence as an un-faulted one and the Theorem-10/21
//! query accounting is unchanged (retries are metered separately on
//! [`crate::Meter::retries`]).

use std::time::Duration;

/// Whether a failed oracle call is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The failure may resolve on its own (timeout, transient I/O error);
    /// the retry policy applies.
    Transient,
    /// The failure is terminal (corrupt database, authorization revoked);
    /// the run aborts immediately without retrying.
    Permanent,
}

impl ErrorClass {
    /// Stable lower-case identifier (used in messages and stats).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
        }
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed `Is-interesting` evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleError {
    /// Transient (retryable) or permanent (terminal).
    pub class: ErrorClass,
    /// Human-readable description of the failure.
    pub message: String,
    /// The oracle-call index at which the fault fired, when known (the
    /// fault-injection harness always knows; real oracles may not).
    pub call_index: Option<u64>,
}

impl OracleError {
    /// A transient (retryable) error.
    pub fn transient(message: impl Into<String>) -> Self {
        OracleError {
            class: ErrorClass::Transient,
            message: message.into(),
            call_index: None,
        }
    }

    /// A permanent (terminal) error.
    pub fn permanent(message: impl Into<String>) -> Self {
        OracleError {
            class: ErrorClass::Permanent,
            message: message.into(),
            call_index: None,
        }
    }

    /// Attaches the oracle-call index at which the fault fired.
    pub fn at_call(mut self, index: u64) -> Self {
        self.call_index = Some(index);
        self
    }

    /// Whether the retry policy applies to this error.
    pub fn is_transient(&self) -> bool {
        self.class == ErrorClass::Transient
    }
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} oracle error: {}", self.class, self.message)?;
        if let Some(i) = self.call_index {
            write!(f, " (oracle call #{i})")?;
        }
        Ok(())
    }
}

impl std::error::Error for OracleError {}

/// Why a fault-tolerant run aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A permanent oracle error, or a transient one that exhausted the
    /// retry budget.
    Oracle(OracleError),
    /// A checkpoint could not be written (the run aborts rather than
    /// continue un-checkpointed past the configured cadence).
    Checkpoint(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Oracle(e) => write!(f, "{e}"),
            RunError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<OracleError> for RunError {
    fn from(e: OracleError) -> Self {
        RunError::Oracle(e)
    }
}

/// Bounded, deterministic retry for transient oracle errors.
///
/// The backoff is **jitter-free** exponential: attempt `k` (1-based)
/// sleeps `base_backoff · 2^(k−1)`, capped at `max_backoff`. No random
/// jitter means a retried schedule is a pure function of the fault
/// schedule — the property the resume-equivalence and parallel==sequential
/// tests rely on. (In a fleet, jitter-free retry can synchronize clients;
/// a production deployment would widen this with per-client seeded jitter
/// derived from a stable client id, which preserves determinism per
/// client. The single-process drivers here do not need it.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per logical query (0 = fail on first transient
    /// error).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// No retries: transient errors abort immediately.
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Up to `max_retries` immediate retries (no backoff sleep) — the
    /// configuration tests use, and the CLI's `--retry <max>` default.
    pub const fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The deterministic backoff before retry `attempt` (1-based):
    /// `base_backoff · 2^(attempt−1)`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_constructors_and_display() {
        let t = OracleError::transient("socket timeout").at_call(17);
        assert!(t.is_transient());
        assert_eq!(t.class, ErrorClass::Transient);
        assert_eq!(
            t.to_string(),
            "transient oracle error: socket timeout (oracle call #17)"
        );
        let p = OracleError::permanent("table dropped");
        assert!(!p.is_transient());
        assert_eq!(p.to_string(), "permanent oracle error: table dropped");
        let r: RunError = p.into();
        assert!(matches!(r, RunError::Oracle(_)));
        assert_eq!(
            RunError::Checkpoint("disk full".into()).to_string(),
            "checkpoint error: disk full"
        );
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff(32), Duration::from_millis(35)); // shift overflow capped

        let none = RetryPolicy::none();
        assert_eq!(none.max_retries, 0);
        assert_eq!(none.backoff(1), Duration::ZERO);
        assert_eq!(RetryPolicy::retries(3).backoff(2), Duration::ZERO);
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
    }
}
