//! The crash-safe checkpoint envelope: versioned, checksummed, written
//! atomically.
//!
//! A checkpoint file is one JSON object:
//!
//! ```json
//! {"format":"dualminer-checkpoint","version":1,"kind":"levelwise",
//!  "payload_len":123,"checksum":"a1b2c3d4e5f60718","payload":{...}}
//! ```
//!
//! * `format`/`version` — refuse files from other tools or future
//!   incompatible revisions instead of misreading them.
//! * `kind` — which driver's state the payload is (`"levelwise"` or
//!   `"dualize-advance"`); resuming the wrong driver is an error, not a
//!   garbled run.
//! * `payload_len`/`checksum` — length and FNV-1a 64 hash of the
//!   payload's canonical serialization. A torn or bit-flipped file fails
//!   verification and the resume aborts with [`CheckpointError::Corrupt`]
//!   rather than continuing from wrong state. (Truncation usually already
//!   fails the JSON parse; the checksum catches corruption *within* a
//!   well-formed file.)
//!
//! Writes go through [`FileCheckpoint`]: serialize to `<path>.tmp`, fsync,
//! then rename over `<path>`. On POSIX the rename is atomic, so at every
//! instant the checkpoint path holds either the previous complete
//! checkpoint or the new one — never a partial write. The driver-state
//! payloads themselves are defined in `dualminer-core::checkpoint`; this
//! module is only the envelope and the I/O discipline.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::fault::fnv1a64;
use crate::json::Json;

/// The `format` field every checkpoint carries.
pub const CHECKPOINT_FORMAT: &str = "dualminer-checkpoint";
/// The current (and only) checkpoint format version.
pub const CHECKPOINT_VERSION: i64 = 1;

/// A decoded checkpoint: which driver it belongs to plus its state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Driver discriminator (`"levelwise"` or `"dualize-advance"`).
    pub kind: String,
    /// The driver-defined state document.
    pub payload: Json,
}

/// Why a checkpoint could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (open, write, fsync, rename, read).
    Io(String),
    /// The file exists but is not a valid checkpoint: malformed JSON,
    /// wrong format marker, unsupported version, or a checksum/length
    /// mismatch (torn or corrupted write).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a checkpoint envelope around `payload`.
pub fn encode(kind: &str, payload: &Json) -> String {
    let body = payload.to_string();
    Json::Obj(vec![
        ("format".into(), Json::str(CHECKPOINT_FORMAT)),
        ("version".into(), Json::Int(CHECKPOINT_VERSION)),
        ("kind".into(), Json::str(kind)),
        ("payload_len".into(), Json::uint(body.len() as u64)),
        (
            "checksum".into(),
            Json::Str(format!("{:016x}", fnv1a64(body.as_bytes()))),
        ),
        ("payload".into(), payload.clone()),
    ])
    .to_string()
}

/// Parses and verifies a checkpoint envelope.
pub fn decode(text: &str) -> Result<Envelope, CheckpointError> {
    let doc =
        Json::parse(text).map_err(|e| CheckpointError::Corrupt(format!("invalid JSON: {e}")))?;
    let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if format != CHECKPOINT_FORMAT {
        return Err(CheckpointError::Corrupt(format!(
            "not a checkpoint file (format {format:?})"
        )));
    }
    let version = doc.get("version").and_then(Json::as_int);
    if version != Some(CHECKPOINT_VERSION) {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported checkpoint version {version:?} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Corrupt("missing kind".into()))?
        .to_string();
    let payload = doc
        .get("payload")
        .ok_or_else(|| CheckpointError::Corrupt("missing payload".into()))?
        .clone();
    // Verify against the payload's canonical re-serialization: the writer
    // is deterministic and objects preserve key order, so an intact file
    // round-trips to byte-identical payload text.
    let body = payload.to_string();
    let expected_len = doc.get("payload_len").and_then(Json::as_uint);
    if expected_len != Some(body.len() as u64) {
        return Err(CheckpointError::Corrupt(format!(
            "payload length mismatch (header {expected_len:?}, actual {})",
            body.len()
        )));
    }
    let expected_sum = doc.get("checksum").and_then(Json::as_str).unwrap_or("");
    let actual_sum = format!("{:016x}", fnv1a64(body.as_bytes()));
    if expected_sum != actual_sum {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch (header {expected_sum:?}, actual {actual_sum:?})"
        )));
    }
    Ok(Envelope { kind, payload })
}

/// Where checkpoints go. One sink serves a whole run; drivers call
/// [`CheckpointSink::save`] at safe points per their cadence.
pub trait CheckpointSink: Sync {
    /// Persists one checkpoint, replacing any previous one.
    fn save(&self, kind: &str, payload: &Json) -> Result<(), CheckpointError>;
}

/// The production sink: one file, replaced atomically on every save
/// (write to `<path>.tmp`, fsync, rename over `<path>`).
#[derive(Clone, Debug)]
pub struct FileCheckpoint {
    path: PathBuf,
}

impl FileCheckpoint {
    /// A sink writing to (and loading from) `path`.
    pub fn new(path: impl Into<PathBuf>) -> FileCheckpoint {
        FileCheckpoint { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads and verifies the checkpoint. `Ok(None)` when no file exists
    /// yet (a fresh run); errors when the file exists but cannot be read
    /// or fails verification.
    pub fn load(&self) -> Result<Option<Envelope>, CheckpointError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io(format!(
                    "cannot read {:?}: {e}",
                    self.path
                )))
            }
        };
        decode(&text).map(Some)
    }
}

impl CheckpointSink for FileCheckpoint {
    fn save(&self, kind: &str, payload: &Json) -> Result<(), CheckpointError> {
        let text = encode(kind, payload);
        let tmp = self.path.with_extension("tmp");
        let io_err = |what: &str, e: std::io::Error| {
            CheckpointError::Io(format!("cannot {what} {:?}: {e}", tmp))
        };
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        file.write_all(text.as_bytes())
            .map_err(|e| io_err("write", e))?;
        file.sync_all().map_err(|e| io_err("sync", e))?;
        drop(file);
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            CheckpointError::Io(format!("cannot rename {:?} to {:?}: {e}", tmp, self.path))
        })?;
        Ok(())
    }
}

/// A test sink that records **every** checkpoint ever saved (a file sink
/// keeps only the last). The resume-equivalence suite saves through one
/// of these, then replays the run from each recorded boundary.
#[derive(Debug, Default)]
pub struct MemoryCheckpoints {
    saved: Mutex<Vec<Envelope>>,
}

impl MemoryCheckpoints {
    /// An empty sink.
    pub fn new() -> MemoryCheckpoints {
        MemoryCheckpoints::default()
    }

    /// All checkpoints saved so far, in order.
    pub fn all(&self) -> Vec<Envelope> {
        self.saved
            .lock()
            .expect("checkpoint mutex poisoned")
            .clone()
    }

    /// Number of checkpoints saved.
    pub fn len(&self) -> usize {
        self.saved.lock().expect("checkpoint mutex poisoned").len()
    }

    /// Whether nothing was saved.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointSink for MemoryCheckpoints {
    fn save(&self, kind: &str, payload: &Json) -> Result<(), CheckpointError> {
        // Round-trip through the wire format so tests exercise exactly
        // what a file would hold.
        let envelope = decode(&encode(kind, payload))?;
        self.saved
            .lock()
            .expect("checkpoint mutex poisoned")
            .push(envelope);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Json {
        Json::Obj(vec![
            ("level".into(), Json::Int(3)),
            (
                "theory".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(0), Json::Int(2)]),
                    Json::Arr(vec![Json::Int(1)]),
                ]),
            ),
            ("queries".into(), Json::uint(97)),
        ])
    }

    #[test]
    fn encode_decode_round_trips() {
        let payload = sample_payload();
        let text = encode("levelwise", &payload);
        let envelope = decode(&text).unwrap();
        assert_eq!(envelope.kind, "levelwise");
        assert_eq!(envelope.payload, payload);
        assert!(text.contains("\"format\":\"dualminer-checkpoint\""));
        assert!(text.contains("\"version\":1"));
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = encode("levelwise", &sample_payload());

        // Truncation → JSON parse failure.
        let truncated = &good[..good.len() / 2];
        assert!(matches!(
            decode(truncated),
            Err(CheckpointError::Corrupt(_))
        ));

        // Bit flip inside the payload → checksum mismatch.
        let flipped = good.replace("\"queries\":97", "\"queries\":98");
        assert_ne!(flipped, good);
        let err = decode(&flipped).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(ref m) if m.contains("checksum")));

        // Wrong format marker and wrong version.
        let other = good.replace(CHECKPOINT_FORMAT, "someone-elses-format");
        assert!(matches!(decode(&other), Err(CheckpointError::Corrupt(_))));
        let future = good.replace("\"version\":1", "\"version\":2");
        assert!(matches!(decode(&future), Err(CheckpointError::Corrupt(_))));

        // Not JSON at all.
        assert!(matches!(decode("hello"), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn file_sink_saves_atomically_and_loads() {
        let dir = std::env::temp_dir().join(format!("dualminer-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let sink = FileCheckpoint::new(&path);

        assert_eq!(sink.load().unwrap(), None);

        sink.save("levelwise", &sample_payload()).unwrap();
        let loaded = sink.load().unwrap().unwrap();
        assert_eq!(loaded.kind, "levelwise");
        assert_eq!(loaded.payload, sample_payload());
        // No tmp file left behind.
        assert!(!path.with_extension("tmp").exists());

        // A second save replaces the first.
        sink.save("dualize-advance", &Json::Obj(vec![])).unwrap();
        assert_eq!(sink.load().unwrap().unwrap().kind, "dualize-advance");

        // A corrupted file is rejected on load.
        std::fs::write(&path, "garbage").unwrap();
        assert!(matches!(sink.load(), Err(CheckpointError::Corrupt(_))));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_sink_records_every_save() {
        let sink = MemoryCheckpoints::new();
        assert!(sink.is_empty());
        sink.save("levelwise", &Json::Int(1)).unwrap();
        sink.save("levelwise", &Json::Int(2)).unwrap();
        let all = sink.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].payload, Json::Int(1));
        assert_eq!(all[1].payload, Json::Int(2));
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn error_display() {
        assert!(CheckpointError::Io("x".into()).to_string().contains("I/O"));
        assert!(CheckpointError::Corrupt("y".into())
            .to_string()
            .contains("corrupt"));
    }
}
