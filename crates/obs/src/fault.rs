//! The seeded fault-injection harness: reproducible fault schedules for
//! testing the fault-tolerance layer end to end.
//!
//! A [`FaultSpec`] is the declarative schedule (parsed from the CLI's
//! `--fault-inject <spec>` string); [`FaultSpec::plan`] turns it into a
//! live [`FaultPlan`] with the per-run counters. The oracle wrapper that
//! consults the plan on every `Is-interesting` call (`FaultyOracle`) lives
//! in `dualminer-core::fallible`, next to the oracle traits it implements;
//! everything *about* the schedule — parsing, seeding, the deterministic
//! decision function — lives here so the CLI and tests share one grammar.
//!
//! Two kinds of trigger, chosen for the two determinism regimes:
//!
//! * **Call-index triggers** (`burst=K@I`, `permanent=I`) fire at global
//!   oracle-call arrival indices (0-based, counting every attempt
//!   including retries). Deterministic for sequential drivers; under
//!   parallel evaluation arrival order is scheduling-dependent, so tests
//!   that sweep thread counts use content-keyed triggers instead.
//! * **Content-keyed triggers** (`transient=P`) decide per *query
//!   content*: a query with key `k` fails its first attempt iff
//!   `hash(seed, k)` falls in a `P`-fraction of the hash space. The
//!   decision depends only on (seed, content), never on arrival order, so
//!   the same queries fault at every thread count — and exactly one
//!   retry per faulted query always suffices.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::error::OracleError;

/// FNV-1a 64-bit hash — the workspace's stable, dependency-free hash for
/// fault keying and checkpoint checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mixes a seed into a content key (one round of splitmix64).
fn mix(seed: u64, key: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A declarative, reproducible fault schedule.
///
/// Parsed from a comma-separated clause list (the CLI grammar):
///
/// ```text
/// seed=42,transient=0.1,burst=3@10,permanent=250,latency=2ms
/// ```
///
/// * `seed=N` — seeds the content-keyed decisions (default 0).
/// * `transient=P` — each distinct query content fails its **first**
///   attempt with probability `P` (content-keyed, thread-count
///   independent); the retry then succeeds.
/// * `burst=K@I` — calls `I, I+1, …, I+K−1` (global arrival index) fail
///   transiently.
/// * `permanent=I` — call `I` fails permanently (repeatable clause).
/// * `latency=D` — every call sleeps `D` first (e.g. `2ms`, `1s`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for content-keyed decisions.
    pub seed: u64,
    /// First-attempt transient-failure probability per query content.
    pub transient_prob: f64,
    /// Transient burst: `(start_index, length)` over global call indices.
    pub burst: Option<(u64, u64)>,
    /// Global call indices that fail permanently.
    pub permanent_at: Vec<u64>,
    /// Injected latency per call.
    pub latency: Duration,
}

impl FaultSpec {
    /// Parses the comma-separated clause grammar. Empty string = no
    /// faults.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?}: expected key=value"))?;
            match key.trim() {
                "seed" => {
                    spec.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: invalid seed"))?;
                }
                "transient" => {
                    let p: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: invalid probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!(
                            "fault clause {clause:?}: probability must be in [0, 1]"
                        ));
                    }
                    spec.transient_prob = p;
                }
                "burst" => {
                    let (len, start) = value
                        .trim()
                        .split_once('@')
                        .ok_or_else(|| format!("fault clause {clause:?}: expected burst=K@I"))?;
                    let len: u64 = len
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: invalid burst length"))?;
                    let start: u64 = start
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: invalid burst start"))?;
                    spec.burst = Some((start, len));
                }
                "permanent" => {
                    let i: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault clause {clause:?}: invalid call index"))?;
                    spec.permanent_at.push(i);
                }
                "latency" => {
                    spec.latency = parse_latency(value.trim())
                        .ok_or_else(|| format!("fault clause {clause:?}: invalid duration"))?;
                }
                other => return Err(format!("unknown fault clause key {other:?}")),
            }
        }
        Ok(spec)
    }

    /// Whether this spec injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.transient_prob == 0.0
            && self.burst.is_none()
            && self.permanent_at.is_empty()
            && self.latency.is_zero()
    }

    /// Starts the schedule: fresh call counter and per-content attempt
    /// tracking.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            spec: self.clone(),
            calls: AtomicU64::new(0),
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

/// `Ns`/`us`/`ms`/`s` duration suffix parsing for the latency clause.
fn parse_latency(s: &str) -> Option<Duration> {
    let split = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num.parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    let nanos = match unit {
        "ns" => value,
        "us" | "µs" => value * 1e3,
        "ms" => value * 1e6,
        "s" | "" => value * 1e9,
        _ => return None,
    };
    Some(Duration::from_nanos(nanos as u64))
}

/// A live fault schedule: the spec plus this run's arrival counter and
/// per-content attempt counts. Thread-safe; one plan is shared by all
/// workers of a parallel run.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    calls: AtomicU64,
    attempts: Mutex<HashMap<u64, u32>>,
}

impl FaultPlan {
    /// A plan that never faults (and never sleeps).
    pub fn noop() -> FaultPlan {
        FaultSpec::default().plan()
    }

    /// The schedule this plan executes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Total oracle-call arrivals observed (including retries).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Sleeps the injected latency, if any.
    pub fn inject_latency(&self) {
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
        }
    }

    /// Registers one oracle-call arrival for the query content `key` and
    /// decides whether it faults. `Ok(())` means the call goes through to
    /// the wrapped oracle.
    pub fn check(&self, key: u64) -> Result<(), OracleError> {
        let index = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.spec.permanent_at.contains(&index) {
            return Err(OracleError::permanent("injected permanent fault").at_call(index));
        }
        if let Some((start, len)) = self.spec.burst {
            if index >= start && index - start < len {
                return Err(OracleError::transient("injected transient burst").at_call(index));
            }
        }
        if self.spec.transient_prob > 0.0 {
            // First attempt for this content fails iff the seeded hash
            // lands in the probability window; later attempts succeed.
            let first_attempt = {
                let mut attempts = self.attempts.lock().expect("fault plan mutex poisoned");
                let n = attempts.entry(key).or_insert(0);
                *n += 1;
                *n == 1
            };
            if first_attempt {
                let h = mix(self.spec.seed, key);
                let threshold = (self.spec.transient_prob * (u64::MAX as f64)) as u64;
                if h < threshold {
                    return Err(OracleError::transient("injected transient fault").at_call(index));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorClass;

    #[test]
    fn parse_full_grammar() {
        let spec =
            FaultSpec::parse("seed=42, transient=0.25, burst=3@10, permanent=7, latency=2ms")
                .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.transient_prob, 0.25);
        assert_eq!(spec.burst, Some((10, 3)));
        assert_eq!(spec.permanent_at, vec![7]);
        assert_eq!(spec.latency, Duration::from_millis(2));
        assert!(!spec.is_noop());

        let multi = FaultSpec::parse("permanent=3,permanent=9").unwrap();
        assert_eq!(multi.permanent_at, vec![3, 9]);

        assert!(FaultSpec::parse("").unwrap().is_noop());
        assert!(FaultSpec::parse("transient=2").is_err());
        assert!(FaultSpec::parse("burst=oops").is_err());
        assert!(FaultSpec::parse("frequency=1").is_err());
        assert!(FaultSpec::parse("seed").is_err());
        assert!(FaultSpec::parse("latency=5h").is_err());
    }

    #[test]
    fn permanent_fires_at_exact_index() {
        let plan = FaultSpec::parse("permanent=2").unwrap().plan();
        assert!(plan.check(0).is_ok());
        assert!(plan.check(1).is_ok());
        let err = plan.check(2).unwrap_err();
        assert_eq!(err.class, ErrorClass::Permanent);
        assert_eq!(err.call_index, Some(2));
        assert!(plan.check(3).is_ok());
        assert_eq!(plan.calls(), 4);
    }

    #[test]
    fn burst_covers_exact_window() {
        let plan = FaultSpec::parse("burst=2@1").unwrap().plan();
        assert!(plan.check(0).is_ok());
        let e1 = plan.check(0).unwrap_err();
        assert_eq!(e1.class, ErrorClass::Transient);
        assert!(plan.check(0).is_err());
        assert!(plan.check(0).is_ok()); // index 3: past the burst
    }

    #[test]
    fn transient_is_content_keyed_and_first_attempt_only() {
        let spec = FaultSpec::parse("seed=7,transient=0.5").unwrap();
        let plan = spec.plan();
        // Find a key that faults and one that doesn't.
        let faulting = (0u64..200).find(|k| mix(7, *k) < u64::MAX / 2).unwrap();
        let clean = (0u64..200).find(|k| mix(7, *k) >= u64::MAX / 2).unwrap();
        assert!(plan.check(faulting).is_err());
        assert!(plan.check(faulting).is_ok()); // retry succeeds
        assert!(plan.check(clean).is_ok());

        // The decision is independent of arrival order: a fresh plan asked
        // in the reverse order faults the same key.
        let plan2 = spec.plan();
        assert!(plan2.check(clean).is_ok());
        assert!(plan2.check(faulting).is_err());
    }

    #[test]
    fn noop_plan_never_faults() {
        let plan = FaultPlan::noop();
        for k in 0..100 {
            assert!(plan.check(k).is_ok());
        }
        assert!(plan.spec().is_noop());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
