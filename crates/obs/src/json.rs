//! A minimal, dependency-free JSON value: writer plus strict parser.
//!
//! The checkpoint format ([`crate::checkpoint`]) needs *round-trippable*
//! JSON — written by one process, read back by a resumed one — which the
//! write-only `StatsCollector` string building cannot provide. This stays
//! deliberately small: numbers are `i64` only (every checkpointed quantity
//! is a count or an index; floats would drag in precision questions the
//! format does not need), object keys keep insertion order, and the parser
//! rejects trailing garbage so a truncated-then-concatenated file cannot
//! silently parse.

use std::fmt::Write as _;

/// A JSON value with integer-only numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (the only numeric kind the format uses).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (stable output for checksums).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an integer value from any unsigned count (checkpointed
    /// counts are far below `i64::MAX`; saturates rather than wraps).
    pub fn uint(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value as a non-negative count.
    pub fn as_uint(&self) -> Option<u64> {
        self.as_int().and_then(|n| u64::try_from(n).ok())
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace; stable field order).
    /// `Display` (and so `.to_string()`) produces the same bytes.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&crate::escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; rejects trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.serialize())
    }
}

/// A JSON parse failure, with the byte offset at which it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("invalid integer"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Checkpoint strings are ASCII identifiers; BMP
                            // scalars are enough, surrogates are rejected.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run up to the next quote or
                    // escape in one step: validating per character is
                    // quadratic on megabyte strings (daemon result bodies
                    // travel as one embedded string). Both delimiters are
                    // ASCII, so the run ends on a UTF-8 boundary.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Json::Obj(vec![
            ("name".into(), Json::str("level\"wise\n")),
            ("count".into(), Json::Int(-42)),
            ("big".into(), Json::uint(u64::MAX)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "sets".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(0), Json::Int(3)]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = value.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("count").and_then(Json::as_int), Some(-42));
        assert_eq!(parsed.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("level\"wise\n")
        );
        assert_eq!(
            parsed.get("sets").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(parsed.get("missing"), None);
        assert_eq!(Json::Int(7).as_uint(), Some(7));
        assert_eq!(Json::Int(-1).as_uint(), None);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\t\" } ").unwrap();
        assert_eq!(
            parsed.get("a").and_then(Json::as_arr),
            Some(&[Json::Int(1), Json::Int(2)][..])
        );
        assert_eq!(parsed.get("b").and_then(Json::as_str), Some("A\t"));
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Daemon result bodies travel as one megabyte-scale embedded
        // string; the chunked scan must round-trip mixed plain runs,
        // escapes, and multi-byte UTF-8 without quadratic re-validation.
        let payload = "Tr(H): σ ≥ 2 \"quoted\"\n".repeat(50_000);
        let doc = Json::Obj(vec![("body".into(), Json::str(&payload))]).serialize();
        let start = std::time::Instant::now();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("body").and_then(Json::as_str), Some(&*payload));
        // Generous bound: linear parsing takes milliseconds even in debug
        // builds; the old per-character validation took tens of seconds.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing is superlinear again: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.5",
            "1e3",
            "{} trailing",
            "[1 2]",
            "{\"a\" 1}",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "99999999999999999999",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = Json::parse("[1,}").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }
}
