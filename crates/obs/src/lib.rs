//! # dualminer-obs
//!
//! Observability and resource governance for the long-running algorithms.
//!
//! The paper's own Example 19 shows the core computations can blow up
//! (`2^{n/2}` intermediate transversals), and the follow-up literature
//! (Eiter–Gottlob–Makino, *New Results on Monotone Dualization*) measures
//! dualization cost entirely in enumerated-output and oracle-call counts.
//! This crate supplies the two primitives every entry point in `core`,
//! `mining`, and `hypergraph` threads through:
//!
//! * **Budgets** — a [`Budget`] (wall-clock deadline, max oracle queries,
//!   max enumerated transversals) is started into a [`Meter`]: shared,
//!   thread-safe counters plus a cooperative cancellation flag. Algorithms
//!   call [`Meter::record_query`] / [`Meter::record_transversal`] as they
//!   work and poll [`Meter::exceeded`] at their loop heads; on a hit they
//!   stop early and return [`Outcome::BudgetExceeded`] carrying a **typed
//!   partial result** instead of running forever.
//! * **Observers** — a [`MiningObserver`] receives progress events
//!   (per-level candidate/theory counts for levelwise/apriori,
//!   per-iteration transversal and counterexample events for
//!   Dualize&Advance, recursion events for Fredman–Khachiyan, node batches
//!   for MMCS/Berge). [`NoopObserver`] is the zero-cost default;
//!   [`StatsCollector`] accumulates everything and renders the standard
//!   machine-readable JSON artifact (`--stats json` on the CLI).
//!
//! The crate is dependency-free (std only) and sits below every other
//! workspace crate, so `hypergraph`, `core`, and `mining` can all share
//! one [`RunCtl`] handle without layering cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod fingerprint;
pub mod json;

pub use checkpoint::{
    CheckpointError, CheckpointSink, Envelope, FileCheckpoint, MemoryCheckpoints,
};
pub use error::{ErrorClass, OracleError, RetryPolicy, RunError};
pub use fault::{fnv1a64, FaultPlan, FaultSpec};
pub use fingerprint::{FnvStream, RowFingerprint};
pub use json::{Json, JsonError};

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Resource limits for one run. `Default` is unlimited on every axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Budget::start`].
    pub timeout: Option<Duration>,
    /// Maximum number of oracle queries / candidate evaluations.
    pub max_queries: Option<u64>,
    /// Maximum number of enumerated (minimal) transversals.
    pub max_transversals: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub const UNLIMITED: Budget = Budget {
        timeout: None,
        max_queries: None,
        max_transversals: None,
    };

    /// Whether no limit is set on any axis.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_queries.is_none() && self.max_transversals.is_none()
    }

    /// Applies a server-side deadline policy: a budget with no timeout
    /// inherits `default`, and any timeout (including an inherited one)
    /// is capped at `max`. Returns the adjusted budget and whether the
    /// policy changed anything — callers that prove bit-identity only
    /// for unbudgeted runs (incremental re-mining) must treat a clamped
    /// budget exactly like a client-requested one.
    pub fn clamp_timeout(self, default: Option<Duration>, max: Option<Duration>) -> (Budget, bool) {
        let mut timeout = self.timeout.or(default);
        if let (Some(t), Some(cap)) = (timeout, max) {
            timeout = Some(t.min(cap));
        }
        let clamped = timeout != self.timeout;
        (Budget { timeout, ..self }, clamped)
    }

    /// Starts the clock: converts the declarative budget into a live
    /// [`Meter`] whose deadline is `now + timeout`.
    pub fn start(&self) -> Meter {
        Meter {
            deadline: self.timeout.map(|t| Instant::now() + t),
            max_queries: self.max_queries,
            max_transversals: self.max_transversals,
            queries: AtomicU64::new(0),
            transversals: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }
}

/// Why a run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The oracle-query / candidate-evaluation limit was reached.
    MaxQueries,
    /// The enumerated-transversal limit was reached.
    MaxTransversals,
    /// [`Meter::cancel`] was called (external cancellation).
    Cancelled,
}

impl BudgetReason {
    /// Stable lower-case identifier, used in the JSON stats artifact.
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetReason::Deadline => "deadline",
            BudgetReason::MaxQueries => "max_queries",
            BudgetReason::MaxTransversals => "max_transversals",
            BudgetReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A started budget: shared, thread-safe counters plus a cooperative
/// cancellation flag. One `Meter` is shared across nested calls (e.g.
/// Dualize&Advance passes its meter into the transversal subroutine), so
/// limits govern the run as a whole, not each stage separately.
#[derive(Debug)]
pub struct Meter {
    deadline: Option<Instant>,
    max_queries: Option<u64>,
    max_transversals: Option<u64>,
    queries: AtomicU64,
    transversals: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    cancelled: AtomicBool,
}

impl Default for Meter {
    fn default() -> Self {
        Budget::UNLIMITED.start()
    }
}

impl Meter {
    /// An unlimited meter (still counts, never trips).
    pub fn unlimited() -> Meter {
        Budget::UNLIMITED.start()
    }

    /// Records one oracle query / candidate evaluation.
    #[inline]
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` oracle queries at once (batch counting from parallel
    /// workers keeps the hot path to one atomic add per chunk).
    #[inline]
    pub fn record_queries(&self, n: u64) {
        if n > 0 {
            self.queries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one enumerated transversal.
    #[inline]
    pub fn record_transversal(&self) {
        self.transversals.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` enumerated transversals at once.
    #[inline]
    pub fn record_transversals(&self, n: u64) {
        if n > 0 {
            self.transversals.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total queries recorded so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total transversals recorded so far.
    pub fn transversals(&self) -> u64 {
        self.transversals.load(Ordering::Relaxed)
    }

    /// Records one oracle retry. Retries are metered *separately* from
    /// [`Meter::record_query`] so the Theorem-10/21 query accounting —
    /// one count per **logical** query — is unchanged by fault recovery.
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observed oracle fault (transient or permanent).
    #[inline]
    pub fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Total oracle retries recorded so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total oracle faults recorded so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Requests cooperative cancellation; the next [`Meter::exceeded`]
    /// poll returns [`BudgetReason::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Polls the budget. Returns the first tripped limit, or `None` while
    /// the run may continue. With no limits set this never reads the
    /// clock, so the unlimited path adds only two relaxed atomic loads.
    #[inline]
    pub fn exceeded(&self) -> Option<BudgetReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(BudgetReason::Cancelled);
        }
        if let Some(max) = self.max_queries {
            if self.queries.load(Ordering::Relaxed) >= max {
                return Some(BudgetReason::MaxQueries);
            }
        }
        if let Some(max) = self.max_transversals {
            if self.transversals.load(Ordering::Relaxed) >= max {
                return Some(BudgetReason::MaxTransversals);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(BudgetReason::Deadline);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// Result of a budget-governed run: either the complete answer, or the
/// partial answer accumulated up to the point the budget tripped. What
/// "partial" means is documented per algorithm (e.g. a prefix of `MTh`
/// for Dualize&Advance, a prefix of `Tr(H)` for MMCS / joint generation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The run finished; the value is the same as the unbudgeted result.
    Complete(T),
    /// The budget tripped; `partial` is the typed intermediate result.
    BudgetExceeded {
        /// The partial result accumulated before stopping.
        partial: T,
        /// Which limit tripped.
        reason: BudgetReason,
    },
}

impl<T> Outcome<T> {
    /// Whether the run finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete(_))
    }

    /// The trip reason, if any.
    pub fn reason(&self) -> Option<BudgetReason> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::BudgetExceeded { reason, .. } => Some(*reason),
        }
    }

    /// The carried value (complete or partial), by reference.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Complete(v) | Outcome::BudgetExceeded { partial: v, .. } => v,
        }
    }

    /// The carried value (complete or partial), by move.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Complete(v) | Outcome::BudgetExceeded { partial: v, .. } => v,
        }
    }

    /// Splits into `(value, Option<reason>)`.
    pub fn into_parts(self) -> (T, Option<BudgetReason>) {
        match self {
            Outcome::Complete(v) => (v, None),
            Outcome::BudgetExceeded { partial, reason } => (partial, Some(reason)),
        }
    }

    /// Maps the carried value, preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete(v) => Outcome::Complete(f(v)),
            Outcome::BudgetExceeded { partial, reason } => Outcome::BudgetExceeded {
                partial: f(partial),
                reason,
            },
        }
    }

    /// Unwraps a `Complete` value; panics on `BudgetExceeded`. Intended
    /// for unbudgeted wrappers, where the unlimited meter cannot trip.
    #[track_caller]
    pub fn expect_complete(self) -> T {
        match self {
            Outcome::Complete(v) => v,
            Outcome::BudgetExceeded { reason, .. } => {
                panic!("budget unexpectedly exceeded: {reason}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// Progress events from a run. All methods have empty defaults, so an
/// observer implements only what it cares about; the `Sync` bound lets
/// parallel workers share one observer reference.
///
/// Event granularity is chosen so observation stays cheap: per level, per
/// iteration, per FK recursion *batch*, and per search-node *batch* —
/// never per bit operation.
pub trait MiningObserver: Sync {
    /// A named phase began (e.g. `"mine"`, `"dualize"`, `"minimize"`).
    fn on_phase_start(&self, _name: &str) {}
    /// The matching phase ended.
    fn on_phase_end(&self, _name: &str) {}
    /// A levelwise/apriori level completed: `candidates` evaluated, of
    /// which `interesting` entered the theory.
    fn on_level(&self, _level: usize, _candidates: usize, _interesting: usize) {}
    /// A Dualize&Advance iteration completed: `transversals_tested`
    /// negative-border candidates were probed; `counterexample` says
    /// whether one was interesting (and so seeded a new maximal set).
    fn on_iteration(&self, _iteration: usize, _transversals_tested: usize, _counterexample: bool) {}
    /// `count` Fredman–Khachiyan recursive calls were performed
    /// (reported in batches from the recursion).
    fn on_fk_calls(&self, _count: u64) {}
    /// `count` minimal transversals were emitted.
    fn on_transversals(&self, _count: u64) {}
    /// `count` search nodes (MMCS recursion nodes, Berge edge-merge
    /// products, levelwise-Tr candidates) were expanded.
    fn on_nodes(&self, _count: u64) {}
    /// A transient oracle fault triggered retry `attempt` (1-based) of a
    /// logical query; `will_retry` is false when the retry budget is
    /// exhausted and the run is about to abort.
    fn on_retry(&self, _attempt: u32, _will_retry: bool) {}
    /// A checkpoint was written at a safe point.
    fn on_checkpoint(&self, _queries_so_far: u64) {}
}

/// The do-nothing observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl MiningObserver for NoopObserver {}

/// Shared per-run control handle: the live [`Meter`] plus the observer.
/// Every `_ctl` entry point takes one of these by reference; nested calls
/// pass it along unchanged so the whole run shares one budget.
#[derive(Clone, Copy)]
pub struct RunCtl<'a> {
    /// The live budget meter.
    pub meter: &'a Meter,
    /// The event sink.
    pub observer: &'a dyn MiningObserver,
}

impl<'a> RunCtl<'a> {
    /// Bundles a meter and an observer.
    pub fn new(meter: &'a Meter, observer: &'a dyn MiningObserver) -> Self {
        RunCtl { meter, observer }
    }

    /// A control handle with the given meter and no observer.
    pub fn with_meter(meter: &'a Meter) -> Self {
        RunCtl {
            meter,
            observer: &NoopObserver,
        }
    }
}

impl std::fmt::Debug for RunCtl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCtl").field("meter", self.meter).finish()
    }
}

// ---------------------------------------------------------------------------
// StatsCollector
// ---------------------------------------------------------------------------

/// Everything the collector knows about one completed (or truncated) run.
#[derive(Clone, Debug, Default, PartialEq)]
struct StatsInner {
    levels: Vec<(usize, usize)>,
    iterations: usize,
    transversals_tested: usize,
    counterexamples: usize,
    phases: Vec<(String, Option<Duration>, Instant)>,
    /// Work-stealing scheduler counters, injected by the frontend at run
    /// end (this crate sits below the scheduler and cannot read them
    /// itself). `None` until [`StatsCollector::set_scheduler`] is called.
    scheduler: Option<SchedCounters>,
    /// Dualization-planner decision and engine counters, injected by the
    /// frontend (this crate sits below the hypergraph engines). `None`
    /// until [`StatsCollector::set_dualize`] is called.
    dualize: Option<DualizeStats>,
}

/// Planner decision and per-backend search counters for one transversal
/// run, injected via [`StatsCollector::set_dualize`]. The numeric fields
/// are `None` for backends that do not collect the corresponding counter
/// (only MU-MMCS and EGM do), and the matching JSON keys are then omitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DualizeStats {
    /// Backend that actually ran (CLI `--algo` spelling, e.g. `"mu-mmcs"`).
    pub backend: String,
    /// Planner rule that selected it (`"forced"` for an explicit `--algo`).
    pub rule: String,
    /// DFS nodes entered.
    pub nodes: Option<u64>,
    /// Minimal transversals emitted by the search.
    pub emitted: Option<u64>,
    /// Murakami–Uno minimality prunes (an emptied `crit[w]`).
    pub minimality_prunes: Option<u64>,
    /// Branches abandoned because the picked edge had no candidates left.
    pub dead_branches: Option<u64>,
    /// Critical-edge bits removed while descending.
    pub crit_removals: Option<u64>,
    /// Critical-edge bits restored while unwinding.
    pub crit_restores: Option<u64>,
    /// EGM vertex splits performed.
    pub egm_splits: Option<u64>,
    /// EGM leaf sub-instances handed to MU-MMCS.
    pub egm_leaves: Option<u64>,
}

/// Run-total work-stealing scheduler counters plus the per-worker
/// `(tasks, steals)` table, as injected via
/// [`StatsCollector::set_scheduler`].
#[derive(Clone, Debug, Default, PartialEq)]
struct SchedCounters {
    tasks: u64,
    steals: u64,
    splits: u64,
    joins: u64,
    per_worker: Vec<(u64, u64)>,
}

/// A [`MiningObserver`] that accumulates every event and renders the
/// standard JSON stats artifact. Thread-safe: counter events use atomics,
/// structured events take a short mutex.
#[derive(Debug)]
pub struct StatsCollector {
    started: Instant,
    fk_calls: AtomicU64,
    transversals: AtomicU64,
    nodes: AtomicU64,
    checkpoints: AtomicU64,
    threads: AtomicU64,
    inner: Mutex<StatsInner>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        StatsCollector::new()
    }
}

impl StatsCollector {
    /// A fresh collector; the run clock starts now.
    pub fn new() -> Self {
        StatsCollector {
            started: Instant::now(),
            fk_calls: AtomicU64::new(0),
            transversals: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            threads: AtomicU64::new(1),
            inner: Mutex::new(StatsInner::default()),
        }
    }

    /// Records the worker-thread count for the JSON artifact.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads as u64, Ordering::Relaxed);
    }

    /// Records the work-stealing scheduler counters for the JSON
    /// artifact: run totals plus per-worker `(tasks, steals)` pairs. The
    /// frontend snapshots the scheduler at run end and injects the
    /// numbers here; until then the artifact omits the `ws_*` keys so
    /// sequential runs keep their exact historical schema.
    pub fn set_scheduler(
        &self,
        tasks: u64,
        steals: u64,
        splits: u64,
        joins: u64,
        per_worker: Vec<(u64, u64)>,
    ) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.scheduler = Some(SchedCounters {
            tasks,
            steals,
            splits,
            joins,
            per_worker,
        });
    }

    /// Records the dualization planner's decision and the executed
    /// backend's search counters for the JSON artifact. The frontend
    /// injects these after a transversal run (like the scheduler counters,
    /// they originate above this crate); until then the artifact omits the
    /// `planner_*`/`tr_*` keys so other run kinds keep their exact
    /// historical schema.
    pub fn set_dualize(&self, stats: DualizeStats) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.dualize = Some(stats);
    }

    /// Total transversal events observed.
    pub fn transversals(&self) -> u64 {
        self.transversals.load(Ordering::Relaxed)
    }

    /// Total FK recursive calls observed.
    pub fn fk_calls(&self) -> u64 {
        self.fk_calls.load(Ordering::Relaxed)
    }

    /// Total search-node events observed.
    pub fn nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Renders the JSON stats artifact. `meter` supplies the
    /// authoritative query/transversal totals; `outcome` is `None` for a
    /// complete run or the trip reason for a truncated one.
    ///
    /// Shape (one object, stable keys):
    /// `{"outcome", "queries", "candidates", "transversals", "fk_calls",
    ///   "nodes", "iterations", "levels": [{"level","candidates","interesting"}],
    ///   "phases": [{"name","ms"}], "threads", "cpus", "wall_ms"}`
    ///
    /// When [`StatsCollector::set_scheduler`] was called, the object
    /// additionally carries `"ws_tasks"`, `"ws_steals"`, `"ws_splits"`,
    /// `"ws_joins"` and `"ws_workers": [{"worker","tasks","steals"}]`
    /// between `"phases"` and `"threads"`. When
    /// [`StatsCollector::set_dualize`] was called, `"planner_choice"`,
    /// `"planner_rule"`, and whichever `"tr_*"` counters the executed
    /// backend collects follow the `ws_*` block.
    pub fn to_json(&self, meter: &Meter, outcome: Option<BudgetReason>) -> String {
        let inner = self.inner.lock().expect("stats mutex poisoned");
        let mut out = String::with_capacity(512);
        out.push('{');
        push_str_field(
            &mut out,
            "outcome",
            outcome.map_or("complete", |r| r.as_str()),
        );
        push_u64_field(&mut out, "queries", meter.queries());
        let candidates: usize = inner.levels.iter().map(|&(c, _)| c).sum();
        push_u64_field(&mut out, "candidates", candidates as u64);
        push_u64_field(&mut out, "transversals", meter.transversals());
        push_u64_field(&mut out, "retries", meter.retries());
        push_u64_field(&mut out, "faults", meter.faults());
        push_u64_field(
            &mut out,
            "checkpoints",
            self.checkpoints.load(Ordering::Relaxed),
        );
        push_u64_field(&mut out, "fk_calls", self.fk_calls.load(Ordering::Relaxed));
        push_u64_field(&mut out, "nodes", self.nodes.load(Ordering::Relaxed));
        push_u64_field(&mut out, "iterations", inner.iterations as u64);
        push_u64_field(
            &mut out,
            "transversals_tested",
            inner.transversals_tested as u64,
        );
        push_u64_field(&mut out, "counterexamples", inner.counterexamples as u64);
        out.push_str("\"levels\":[");
        for (i, &(cands, interesting)) in inner.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{i},\"candidates\":{cands},\"interesting\":{interesting}}}"
            ));
        }
        out.push_str("],");
        out.push_str("\"phases\":[");
        for (i, (name, elapsed, started)) in inner.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ms = elapsed.unwrap_or_else(|| started.elapsed()).as_secs_f64() * 1e3;
            out.push_str(&format!("{{\"name\":\"{}\",\"ms\":{ms:.3}}}", escape(name)));
        }
        out.push_str("],");
        if let Some(sched) = &inner.scheduler {
            push_u64_field(&mut out, "ws_tasks", sched.tasks);
            push_u64_field(&mut out, "ws_steals", sched.steals);
            push_u64_field(&mut out, "ws_splits", sched.splits);
            push_u64_field(&mut out, "ws_joins", sched.joins);
            out.push_str("\"ws_workers\":[");
            for (i, &(t, s)) in sched.per_worker.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"worker\":{i},\"tasks\":{t},\"steals\":{s}}}"));
            }
            out.push_str("],");
        }
        if let Some(d) = &inner.dualize {
            push_str_field(&mut out, "planner_choice", &d.backend);
            push_str_field(&mut out, "planner_rule", &d.rule);
            for (key, val) in [
                ("tr_nodes", d.nodes),
                ("tr_emitted", d.emitted),
                ("tr_minimality_prunes", d.minimality_prunes),
                ("tr_dead_branches", d.dead_branches),
                ("tr_crit_removals", d.crit_removals),
                ("tr_crit_restores", d.crit_restores),
                ("tr_egm_splits", d.egm_splits),
                ("tr_egm_leaves", d.egm_leaves),
            ] {
                if let Some(v) = val {
                    push_u64_field(&mut out, key, v);
                }
            }
        }
        push_u64_field(&mut out, "threads", self.threads.load(Ordering::Relaxed));
        push_u64_field(&mut out, "cpus", available_cpus() as u64);
        let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!("\"wall_ms\":{wall_ms:.3}"));
        out.push('}');
        out
    }
}

impl MiningObserver for StatsCollector {
    fn on_phase_start(&self, name: &str) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.phases.push((name.to_string(), None, Instant::now()));
    }

    fn on_phase_end(&self, name: &str) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        if let Some((_, elapsed, started)) = inner
            .phases
            .iter_mut()
            .rev()
            .find(|(n, elapsed, _)| n == name && elapsed.is_none())
        {
            *elapsed = Some(started.elapsed());
        }
    }

    fn on_level(&self, level: usize, candidates: usize, interesting: usize) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        if inner.levels.len() <= level {
            inner.levels.resize(level + 1, (0, 0));
        }
        inner.levels[level] = (candidates, interesting);
    }

    fn on_iteration(&self, _iteration: usize, transversals_tested: usize, counterexample: bool) {
        let mut inner = self.inner.lock().expect("stats mutex poisoned");
        inner.iterations += 1;
        inner.transversals_tested += transversals_tested;
        inner.counterexamples += usize::from(counterexample);
    }

    fn on_fk_calls(&self, count: u64) {
        self.fk_calls.fetch_add(count, Ordering::Relaxed);
    }

    fn on_transversals(&self, count: u64) {
        self.transversals.fetch_add(count, Ordering::Relaxed);
    }

    fn on_nodes(&self, count: u64) {
        self.nodes.fetch_add(count, Ordering::Relaxed);
    }

    fn on_checkpoint(&self, _queries_so_far: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }
}

/// The machine's available parallelism (1 when undetectable).
pub fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":\"{}\",", escape(value)));
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push_str(&format!("\"{key}\":{value},"));
}

fn escape(s: &str) -> String {
    // Copy maximal clean runs with one `push_str` each instead of
    // re-encoding char by char: daemon result bodies travel as one
    // multi-megabyte embedded string, and every escape-triggering byte
    // is ASCII, so runs always end on a UTF-8 boundary.
    let mut out = String::with_capacity(s.len() + 2);
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' && b != b'\\' && b >= 0x20 {
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            _ => out.push_str(&format!("\\u{:04x}", b)),
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let meter = Meter::unlimited();
        for _ in 0..1000 {
            meter.record_query();
            meter.record_transversal();
        }
        assert_eq!(meter.exceeded(), None);
        assert_eq!(meter.queries(), 1000);
        assert_eq!(meter.transversals(), 1000);
    }

    #[test]
    fn clamp_timeout_defaults_and_caps() {
        let ms = Duration::from_millis;
        // No policy: nothing changes.
        assert_eq!(
            Budget::UNLIMITED.clamp_timeout(None, None),
            (Budget::UNLIMITED, false)
        );
        // A default fills in a missing timeout.
        let (b, clamped) = Budget::UNLIMITED.clamp_timeout(Some(ms(50)), None);
        assert_eq!((b.timeout, clamped), (Some(ms(50)), true));
        // A client timeout under the cap is untouched.
        let client = Budget {
            timeout: Some(ms(20)),
            ..Budget::UNLIMITED
        };
        assert_eq!(
            client.clamp_timeout(Some(ms(50)), Some(ms(100))),
            (client, false)
        );
        // A client timeout over the cap is clamped down.
        let greedy = Budget {
            timeout: Some(ms(500)),
            max_queries: Some(9),
            ..Budget::UNLIMITED
        };
        let (b, clamped) = greedy.clamp_timeout(None, Some(ms(100)));
        assert_eq!((b.timeout, clamped), (Some(ms(100)), true));
        assert_eq!(b.max_queries, Some(9), "other axes pass through");
        // The default itself is subject to the cap.
        let (b, clamped) = Budget::UNLIMITED.clamp_timeout(Some(ms(500)), Some(ms(100)));
        assert_eq!((b.timeout, clamped), (Some(ms(100)), true));
    }

    #[test]
    fn query_limit_trips_at_threshold() {
        let meter = Budget {
            max_queries: Some(3),
            ..Budget::default()
        }
        .start();
        meter.record_queries(2);
        assert_eq!(meter.exceeded(), None);
        meter.record_query();
        assert_eq!(meter.exceeded(), Some(BudgetReason::MaxQueries));
    }

    #[test]
    fn transversal_limit_trips_at_threshold() {
        let meter = Budget {
            max_transversals: Some(2),
            ..Budget::default()
        }
        .start();
        meter.record_transversal();
        assert_eq!(meter.exceeded(), None);
        meter.record_transversal();
        assert_eq!(meter.exceeded(), Some(BudgetReason::MaxTransversals));
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let meter = Budget {
            timeout: Some(Duration::ZERO),
            ..Budget::default()
        }
        .start();
        assert_eq!(meter.exceeded(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn cancellation_wins() {
        let meter = Meter::unlimited();
        assert_eq!(meter.exceeded(), None);
        meter.cancel();
        assert_eq!(meter.exceeded(), Some(BudgetReason::Cancelled));
    }

    #[test]
    fn outcome_accessors() {
        let c: Outcome<u32> = Outcome::Complete(7);
        assert!(c.is_complete());
        assert_eq!(c.reason(), None);
        assert_eq!(*c.value(), 7);
        assert_eq!(c.clone().into_parts(), (7, None));
        assert_eq!(c.map(|x| x + 1).expect_complete(), 8);

        let p: Outcome<u32> = Outcome::BudgetExceeded {
            partial: 3,
            reason: BudgetReason::Deadline,
        };
        assert!(!p.is_complete());
        assert_eq!(p.reason(), Some(BudgetReason::Deadline));
        assert_eq!(p.clone().into_value(), 3);
        assert_eq!(p.into_parts(), (3, Some(BudgetReason::Deadline)));
    }

    #[test]
    #[should_panic(expected = "budget unexpectedly exceeded")]
    fn expect_complete_panics_on_partial() {
        let p: Outcome<u32> = Outcome::BudgetExceeded {
            partial: 0,
            reason: BudgetReason::MaxQueries,
        };
        p.expect_complete();
    }

    #[test]
    fn collector_accumulates_and_renders_json() {
        let collector = StatsCollector::new();
        collector.set_threads(4);
        collector.on_phase_start("mine");
        collector.on_level(0, 1, 1);
        collector.on_level(1, 5, 3);
        collector.on_iteration(0, 4, true);
        collector.on_fk_calls(10);
        collector.on_transversals(6);
        collector.on_nodes(42);
        collector.on_phase_end("mine");

        let meter = Meter::unlimited();
        meter.record_queries(9);
        meter.record_transversals(6);

        let json = collector.to_json(&meter, None);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"outcome\":\"complete\""));
        assert!(json.contains("\"queries\":9"));
        assert!(json.contains("\"candidates\":6"));
        assert!(json.contains("\"transversals\":6"));
        assert!(json.contains("\"fk_calls\":10"));
        assert!(json.contains("\"nodes\":42"));
        assert!(json.contains("\"iterations\":1"));
        assert!(json.contains("\"counterexamples\":1"));
        assert!(json.contains("{\"level\":1,\"candidates\":5,\"interesting\":3}"));
        assert!(json.contains("\"name\":\"mine\""));
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"cpus\":"));
        assert!(json.contains("\"wall_ms\":"));

        let truncated = collector.to_json(&meter, Some(BudgetReason::Deadline));
        assert!(truncated.contains("\"outcome\":\"deadline\""));
    }

    #[test]
    fn dualize_stats_keys_appear_only_when_set() {
        let collector = StatsCollector::new();
        let meter = Meter::unlimited();
        let without = collector.to_json(&meter, None);
        assert!(!without.contains("planner_choice"));
        assert!(!without.contains("tr_nodes"));

        collector.set_dualize(DualizeStats {
            backend: "mu-mmcs".to_string(),
            rule: "dense-default".to_string(),
            nodes: Some(12),
            emitted: Some(5),
            minimality_prunes: Some(3),
            dead_branches: None,
            crit_removals: Some(7),
            crit_restores: Some(7),
            egm_splits: None,
            egm_leaves: None,
        });
        let with = collector.to_json(&meter, None);
        assert!(with.contains("\"planner_choice\":\"mu-mmcs\""));
        assert!(with.contains("\"planner_rule\":\"dense-default\""));
        assert!(with.contains("\"tr_nodes\":12"));
        assert!(with.contains("\"tr_minimality_prunes\":3"));
        assert!(with.contains("\"tr_crit_restores\":7"));
        assert!(!with.contains("tr_dead_branches"));
        assert!(!with.contains("tr_egm_splits"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn observer_object_is_sync_shareable() {
        let collector = StatsCollector::new();
        let meter = Meter::unlimited();
        let ctl = RunCtl::new(&meter, &collector);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    ctl.observer.on_nodes(1);
                    ctl.meter.record_query();
                });
            }
        });
        assert_eq!(collector.nodes(), 4);
        assert_eq!(meter.queries(), 4);
    }
}
