//! Property tests: learners recover random monotone targets exactly, the
//! DNF/CNF dualization identities hold, and the query bounds of
//! Corollaries 27 and 29 bracket the measured counts.

use dualminer_bitset::AttrSet;
use dualminer_core::bounds;
use dualminer_hypergraph::TrAlgorithm;
use dualminer_learning::func::equivalent;
use dualminer_learning::learn::{
    learn_monotone_dualize, learn_monotone_levelwise, transversals_via_learner,
};
use dualminer_learning::{FuncMq, MonotoneDnf};
use proptest::prelude::*;

const N: usize = 6;

fn arb_dnf() -> impl Strategy<Value = MonotoneDnf> {
    proptest::collection::vec(proptest::collection::vec(0..N, 0..N), 0..5).prop_map(|terms| {
        MonotoneDnf::new(
            N,
            terms
                .into_iter()
                .map(|t| AttrSet::from_indices(N, t))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dualize_learner_is_exact(target in arb_dnf()) {
        for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
            let learned = learn_monotone_dualize(FuncMq::new(target.clone()), algo);
            prop_assert_eq!(&learned.dnf, &target);
            prop_assert!(equivalent(&learned.dnf, &learned.cnf));
            prop_assert_eq!(&learned.cnf, &target.to_cnf());
        }
    }

    #[test]
    fn levelwise_learner_is_exact(target in arb_dnf()) {
        let learned = learn_monotone_levelwise(FuncMq::new(target.clone()));
        prop_assert_eq!(&learned.dnf, &target);
        prop_assert_eq!(&learned.cnf, &target.to_cnf());
    }

    #[test]
    fn learned_function_evaluates_like_target(target in arb_dnf(), bits in 0usize..64) {
        let learned = learn_monotone_dualize(
            FuncMq::new(target.clone()),
            TrAlgorithm::Berge,
        );
        let x = AttrSet::from_indices(N, (0..N).filter(|i| bits >> i & 1 == 1));
        prop_assert_eq!(learned.dnf.eval(&x), target.eval(&x));
        prop_assert_eq!(learned.cnf.eval(&x), target.eval(&x));
    }

    #[test]
    fn query_bounds_bracket_measurements(target in arb_dnf()) {
        let learned = learn_monotone_dualize(
            FuncMq::new(target.clone()),
            TrAlgorithm::FkJointGeneration,
        );
        // Corollary 27 lower bound.
        prop_assert!(learned.queries >= learned.corollary27_lower_bound());
        // Corollary 29 upper bound (+1 for the explicit ∅ seed).
        let ub = bounds::corollary29_query_bound(learned.cnf.len(), learned.dnf.len(), N);
        prop_assert!(learned.queries as u128 <= ub + 1,
            "queries {} > bound {}", learned.queries, ub);
    }

    #[test]
    fn dnf_cnf_dualization_is_involutive(target in arb_dnf()) {
        prop_assert_eq!(target.to_cnf().to_dnf(), target.clone());
        // And the sizes obey the trivial antichain bound both ways.
        let cnf = target.to_cnf();
        if !target.is_empty() && !cnf.is_empty() {
            for t in target.terms() {
                for c in cnf.clauses() {
                    prop_assert!(t.intersects(c) || t.is_empty() || c.is_empty());
                }
            }
        }
    }

    #[test]
    fn corollary30_matches_direct_htr(
        edges in proptest::collection::vec(proptest::collection::vec(0..N, 1..4), 0..5)
    ) {
        let h = dualminer_hypergraph::Hypergraph::from_index_edges(N, edges);
        let via_learner = transversals_via_learner(&h, TrAlgorithm::Berge);
        let direct = dualminer_hypergraph::berge::transversals(&h.minimized());
        prop_assert_eq!(via_learner, direct);
    }
}
