//! # dualminer-learning
//!
//! Exact learning of monotone Boolean functions with membership queries —
//! Section 6 of the PODS'97 paper, which proves the task **equivalent** to
//! the abstract data mining problem (Theorem 24):
//!
//! > assignments `x ∈ {0,1}ⁿ` ↔ attribute sets; `f(x)` ↔ `¬q(r, set(x))`;
//! > membership queries ↔ `Is-interesting` queries.
//!
//! Under the bridge, the minimal true points of `f` are the negative
//! border of the mining theory (= the terms of `f`'s unique minimal
//! **DNF**), and the maximal false points are `MTh` (their complements are
//! the clauses of the unique minimal **CNF**) — Example 25 spells this out
//! on the Figure 1 function `f = AD ∨ CD = (A ∨ C)(D)`.
//!
//! The corollaries implemented and measured here:
//!
//! * **Corollary 26** — the levelwise learner handles monotone CNFs whose
//!   clauses have ≥ `n − O(log n)` variables in polynomial time.
//! * **Corollary 27** — every learner needs ≥ `|DNF(f)| + |CNF(f)|`
//!   membership queries (Theorem 2 through the bridge).
//! * **Corollaries 28/29** — Dualize & Advance learns both representations
//!   with `≤ |CNF|·(|DNF| + n²)` queries and sub-exponential time given
//!   the Fredman–Khachiyan subroutine.
//! * **Corollary 30** — a DNF learner yields an output-polynomial HTR
//!   algorithm: [`learn::transversals_via_learner`].
//!
//! The [`angluin`] module adds the classical upper-bound counterpoint:
//! with an *equivalence* oracle on top of membership queries, monotone
//! DNFs are learnable with `|DNF|+1` EQs and `≤ |DNF|·n` MQs — the
//! exponential `|CNF|` term of Corollary 27 disappears, which is exactly
//! why the corollary "explains the lower bound given by Angluin".

//! # Example
//!
//! ```
//! use dualminer_bitset::AttrSet;
//! use dualminer_hypergraph::TrAlgorithm;
//! use dualminer_learning::learn::learn_monotone_dualize;
//! use dualminer_learning::{FuncMq, MonotoneDnf};
//!
//! // Hide f = x0x3 ∨ x2x3 behind a membership oracle and learn it back.
//! let secret = MonotoneDnf::new(4, vec![
//!     AttrSet::from_indices(4, [0, 3]),
//!     AttrSet::from_indices(4, [2, 3]),
//! ]);
//! let learned = learn_monotone_dualize(FuncMq::new(secret.clone()), TrAlgorithm::Berge);
//! assert_eq!(learned.dnf, secret);
//! assert!(learned.queries >= learned.corollary27_lower_bound());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angluin;
pub mod func;
pub mod gen;
pub mod learn;
pub mod oracle;

pub use func::{MonotoneCnf, MonotoneDnf};
pub use oracle::{CountingMq, FuncMq, MembershipOracle};
