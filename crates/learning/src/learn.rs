//! The learners (Corollaries 26–30).

use dualminer_bitset::AttrSet;
use dualminer_core::dualize_advance::dualize_advance;
use dualminer_core::levelwise::levelwise;
use dualminer_core::oracle::CountingOracle;
use dualminer_hypergraph::{Hypergraph, TrAlgorithm};

use crate::oracle::{CountingMq, MembershipOracle, MqAsInterest};
use crate::{MonotoneCnf, MonotoneDnf};

/// A learned monotone function: both unique minimum representations, plus
/// the number of membership queries spent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LearnedFunction {
    /// The minimum DNF — its terms are the minimal true points
    /// (= `Bd⁻` of the mining view).
    pub dnf: MonotoneDnf,
    /// The minimum CNF — its clauses are the complements of the maximal
    /// false points (= complements of `MTh`).
    pub cnf: MonotoneCnf,
    /// Distinct membership queries used.
    pub queries: u64,
}

impl LearnedFunction {
    /// The Corollary 27 lower bound for this function:
    /// `|DNF(f)| + |CNF(f)|`.
    pub fn corollary27_lower_bound(&self) -> u64 {
        (self.dnf.len() + self.cnf.len()) as u64
    }
}

/// Corollaries 28/29: learn a monotone function exactly with membership
/// queries via Dualize & Advance through the Theorem 24 bridge.
///
/// Queries ≤ `|CNF(f)| · (|DNF(f)| + n²)` (Corollary 29's accounting);
/// with [`TrAlgorithm::FkJointGeneration`] the running time is
/// sub-exponential in `|DNF| + |CNF|` (the paper's `t(m) = m^{o(log m)}`
/// class).
pub fn learn_monotone_dualize<M: MembershipOracle>(mq: M, algo: TrAlgorithm) -> LearnedFunction {
    let n = mq.n_vars();
    let mut oracle = CountingOracle::new(MqAsInterest(CountingMq::new(mq)));
    let run = dualize_advance(&mut oracle, algo);
    let cnf = MonotoneCnf::new(n, run.maximal.iter().map(AttrSet::complement).collect());
    let dnf = MonotoneDnf::new(n, run.negative_border);
    LearnedFunction {
        dnf,
        cnf,
        queries: oracle.distinct_queries(),
    }
}

/// Corollary 26: the levelwise learner. Polynomial whenever every clause
/// of `CNF(f)` has at least `n − O(log n)` variables — equivalently, every
/// maximal false point is small — because the set of false points it
/// walks has size `n^{O(log n)}`… and for clauses of size ≥ `n − k` with
/// constant `k`, plainly polynomial.
///
/// Correct for *every* monotone target; only the running time needs the
/// clause-size promise.
pub fn learn_monotone_levelwise<M: MembershipOracle>(mq: M) -> LearnedFunction {
    let n = mq.n_vars();
    let mut oracle = CountingOracle::new(MqAsInterest(CountingMq::new(mq)));
    let run = levelwise(&mut oracle);
    let cnf = MonotoneCnf::new(
        n,
        run.positive_border
            .iter()
            .map(AttrSet::complement)
            .collect(),
    );
    let dnf = MonotoneDnf::new(n, run.negative_border);
    LearnedFunction {
        dnf,
        cnf,
        queries: oracle.distinct_queries(),
    }
}

/// Corollary 30: a learner that produces DNF representations yields an
/// output-polynomial transversal algorithm. Given `H`, learn the monotone
/// function whose *CNF clauses are the edges of `H`* (answering membership
/// queries by evaluating that CNF); the learned DNF's terms are `Tr(H)`.
pub fn transversals_via_learner(h: &Hypergraph, algo: TrAlgorithm) -> Hypergraph {
    let n = h.universe_size();
    let cnf = MonotoneCnf::new(n, h.edges().to_vec());
    struct CnfMq {
        cnf: MonotoneCnf,
    }
    impl MembershipOracle for CnfMq {
        fn n_vars(&self) -> usize {
            self.cnf.n_vars()
        }
        fn query(&mut self, x: &AttrSet) -> bool {
            self.cnf.eval(x)
        }
    }
    let learned = learn_monotone_dualize(CnfMq { cnf }, algo);
    Hypergraph::from_edges(n, learned.dnf.terms().to_vec()).expect("terms in universe")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FuncMq;
    use dualminer_bitset::Universe;
    use dualminer_core::bounds;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(4, v.iter().copied())
    }

    #[test]
    fn learns_example_25() {
        let u = Universe::letters(4);
        let target = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3])]);
        for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
            let learned = learn_monotone_dualize(FuncMq::new(target.clone()), algo);
            assert_eq!(learned.dnf, target, "{algo:?}");
            assert_eq!(learned.cnf.display(&u), "(D)(A ∨ C)");
            assert!(crate::func::equivalent(&learned.dnf, &learned.cnf));
        }
    }

    #[test]
    fn levelwise_learner_agrees() {
        let target = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3])]);
        let lw = learn_monotone_levelwise(FuncMq::new(target.clone()));
        assert_eq!(lw.dnf, target);
        assert_eq!(lw.cnf, target.to_cnf());
    }

    #[test]
    fn learns_constants() {
        for algo in [TrAlgorithm::Berge, TrAlgorithm::FkJointGeneration] {
            let t = learn_monotone_dualize(FuncMq::new(MonotoneDnf::constant_true(3)), algo);
            assert_eq!(t.dnf, MonotoneDnf::constant_true(3));
            assert_eq!(t.cnf, MonotoneCnf::constant_true(3));
            let f = learn_monotone_dualize(FuncMq::new(MonotoneDnf::constant_false(3)), algo);
            assert_eq!(f.dnf, MonotoneDnf::constant_false(3));
            assert_eq!(f.cnf, MonotoneCnf::constant_false(3));
        }
        let t = learn_monotone_levelwise(FuncMq::new(MonotoneDnf::constant_true(3)));
        assert_eq!(t.cnf, MonotoneCnf::constant_true(3));
    }

    #[test]
    fn corollary27_lower_bound_respected() {
        let target = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3]), s(&[1])]);
        let learned =
            learn_monotone_dualize(FuncMq::new(target.clone()), TrAlgorithm::FkJointGeneration);
        assert!(learned.queries >= learned.corollary27_lower_bound());
        let lw = learn_monotone_levelwise(FuncMq::new(target));
        assert!(lw.queries >= lw.corollary27_lower_bound());
    }

    #[test]
    fn corollary29_query_bound_respected() {
        let target = MonotoneDnf::new(4, vec![s(&[0, 1]), s(&[2, 3])]);
        let learned =
            learn_monotone_dualize(FuncMq::new(target.clone()), TrAlgorithm::FkJointGeneration);
        let bound = bounds::corollary29_query_bound(learned.cnf.len(), learned.dnf.len(), 4);
        assert!(
            (learned.queries as u128) <= bound + 1,
            "queries {} > bound {}",
            learned.queries,
            bound
        );
    }

    #[test]
    fn corollary30_transversals_via_learner() {
        let h = Hypergraph::from_index_edges(5, [vec![0, 1], vec![1, 2], vec![3, 4]]);
        let via_learner = transversals_via_learner(&h, TrAlgorithm::Berge);
        let direct = dualminer_hypergraph::berge::transversals(&h);
        assert_eq!(via_learner, direct);
    }

    #[test]
    fn random_targets_learned_exactly() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(3..7);
            let m = rng.gen_range(0..4);
            let terms: Vec<AttrSet> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(1..=n);
                    AttrSet::from_indices(n, (0..k).map(|_| rng.gen_range(0..n)))
                })
                .collect();
            let target = MonotoneDnf::new(n, terms);
            let learned = learn_monotone_dualize(FuncMq::new(target.clone()), TrAlgorithm::Berge);
            assert_eq!(learned.dnf, target);
            assert_eq!(learned.cnf, target.to_cnf());
        }
    }
}
