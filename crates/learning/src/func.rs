//! Monotone Boolean functions in DNF and CNF.
//!
//! A monotone function has a unique minimum DNF (disjunction of its
//! *prime implicants* — here: minimal true sets) and a unique minimum CNF
//! (conjunction of its *prime implicates* — minimal clauses). The two are
//! linked by hypergraph dualization: the prime implicates are exactly the
//! minimal transversals of the prime-implicant hypergraph, which is what
//! makes monotone-function learning and `Tr(H)` interchangeable
//! (Section 6, and Fredman–Khachiyan's original setting).

use dualminer_bitset::{AttrSet, Universe};
use dualminer_hypergraph::{berge, minimize_family, Hypergraph};

/// A monotone DNF: `f(x) = ⋁ᵢ ⋀_{v ∈ Tᵢ} x_v`, stored as the term family
/// `{Tᵢ}`. No terms ⇒ constant false; an empty term ⇒ constant true.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonotoneDnf {
    n: usize,
    terms: Vec<AttrSet>,
}

/// A monotone CNF: `f(x) = ⋀ⱼ ⋁_{v ∈ Cⱼ} x_v`, stored as the clause family
/// `{Cⱼ}`. No clauses ⇒ constant true; an empty clause ⇒ constant false.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonotoneCnf {
    n: usize,
    clauses: Vec<AttrSet>,
}

impl MonotoneDnf {
    /// Builds a DNF, minimizing the term family (so `terms()` is the
    /// unique minimum representation).
    ///
    /// # Panics
    /// Panics if any term lives in a different universe.
    pub fn new(n: usize, terms: Vec<AttrSet>) -> Self {
        for t in &terms {
            assert_eq!(t.universe_size(), n, "term outside universe");
        }
        MonotoneDnf {
            n,
            terms: minimize_family(terms),
        }
    }

    /// The constant-false function.
    pub fn constant_false(n: usize) -> Self {
        MonotoneDnf { n, terms: vec![] }
    }

    /// The constant-true function.
    pub fn constant_true(n: usize) -> Self {
        MonotoneDnf {
            n,
            terms: vec![AttrSet::empty(n)],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// The minimal terms (prime implicants), card-lex sorted.
    pub fn terms(&self) -> &[AttrSet] {
        &self.terms
    }

    /// `|DNF(f)|`: the number of minimal terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether `f ≡ 0`.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates `f` on the assignment whose true variables are `x`.
    pub fn eval(&self, x: &AttrSet) -> bool {
        self.terms.iter().any(|t| t.is_subset(x))
    }

    /// The unique minimum CNF of the same function: clauses are the
    /// minimal transversals of the term hypergraph.
    pub fn to_cnf(&self) -> MonotoneCnf {
        let h = Hypergraph::from_edges(self.n, self.terms.clone()).expect("terms in universe");
        MonotoneCnf {
            n: self.n,
            clauses: berge::transversals(&h).edges().to_vec(),
        }
    }

    /// Renders e.g. `AD ∨ CD` (constant false renders as `⊥`).
    pub fn display(&self, u: &Universe) -> String {
        if self.terms.is_empty() {
            return "⊥".into();
        }
        self.terms
            .iter()
            .map(|t| {
                if t.is_empty() {
                    "⊤".into()
                } else {
                    u.display(t)
                }
            })
            .collect::<Vec<_>>()
            .join(" ∨ ")
    }
}

impl MonotoneCnf {
    /// Builds a CNF, minimizing the clause family.
    ///
    /// # Panics
    /// Panics if any clause lives in a different universe.
    pub fn new(n: usize, clauses: Vec<AttrSet>) -> Self {
        for c in &clauses {
            assert_eq!(c.universe_size(), n, "clause outside universe");
        }
        MonotoneCnf {
            n,
            clauses: minimize_family(clauses),
        }
    }

    /// The constant-true function.
    pub fn constant_true(n: usize) -> Self {
        MonotoneCnf { n, clauses: vec![] }
    }

    /// The constant-false function.
    pub fn constant_false(n: usize) -> Self {
        MonotoneCnf {
            n,
            clauses: vec![AttrSet::empty(n)],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// The minimal clauses (prime implicates), card-lex sorted.
    pub fn clauses(&self) -> &[AttrSet] {
        &self.clauses
    }

    /// `|CNF(f)|`: the number of minimal clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether `f ≡ 1`.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates `f` on the assignment whose true variables are `x`.
    pub fn eval(&self, x: &AttrSet) -> bool {
        self.clauses.iter().all(|c| c.intersects(x))
    }

    /// The unique minimum DNF of the same function.
    pub fn to_dnf(&self) -> MonotoneDnf {
        let h = Hypergraph::from_edges(self.n, self.clauses.clone()).expect("clauses in universe");
        MonotoneDnf {
            n: self.n,
            terms: berge::transversals(&h).edges().to_vec(),
        }
    }

    /// Renders e.g. `(A ∨ C)(D)` (constant true renders as `⊤`).
    pub fn display(&self, u: &Universe) -> String {
        if self.clauses.is_empty() {
            return "⊤".into();
        }
        self.clauses
            .iter()
            .map(|c| {
                if c.is_empty() {
                    "(⊥)".into()
                } else {
                    format!(
                        "({})",
                        c.iter().map(|v| u.name(v)).collect::<Vec<_>>().join(" ∨ ")
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("")
    }
}

/// Semantic equivalence of a DNF and a CNF, decided by the
/// Fredman–Khachiyan duality check (no `2ⁿ` sweep): `f_dnf ≡ f_cnf` iff the
/// term family and the clause family are dual hypergraphs.
pub fn equivalent(dnf: &MonotoneDnf, cnf: &MonotoneCnf) -> bool {
    assert_eq!(dnf.n_vars(), cnf.n_vars());
    let f = Hypergraph::from_edges(dnf.n, dnf.terms.clone()).expect("in universe");
    let g = Hypergraph::from_edges(cnf.n, cnf.clauses.clone()).expect("in universe");
    dualminer_hypergraph::fk::are_dual(&f, &g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(4, v.iter().copied())
    }

    #[test]
    fn example_25_function() {
        // f = AD ∨ CD; CNF (A ∨ C)(D).
        let u = Universe::letters(4);
        let dnf = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3])]);
        assert_eq!(dnf.display(&u), "AD ∨ CD");
        let cnf = dnf.to_cnf();
        assert_eq!(cnf.display(&u), "(D)(A ∨ C)");
        assert!(equivalent(&dnf, &cnf));
        assert_eq!(cnf.to_dnf(), dnf);
    }

    #[test]
    fn eval_agrees_across_representations() {
        let dnf = MonotoneDnf::new(4, vec![s(&[0, 1]), s(&[2])]);
        let cnf = dnf.to_cnf();
        for bits in 0..16usize {
            let x = AttrSet::from_indices(4, (0..4).filter(|i| bits >> i & 1 == 1));
            assert_eq!(dnf.eval(&x), cnf.eval(&x), "{x:?}");
        }
    }

    #[test]
    fn constants() {
        let t = MonotoneDnf::constant_true(3);
        let f = MonotoneDnf::constant_false(3);
        assert!(t.eval(&AttrSet::empty(3)));
        assert!(!f.eval(&AttrSet::full(3)));
        assert_eq!(t.to_cnf(), MonotoneCnf::constant_true(3));
        assert_eq!(f.to_cnf(), MonotoneCnf::constant_false(3));
        assert_eq!(MonotoneCnf::constant_true(3).to_dnf(), t);
        assert_eq!(MonotoneCnf::constant_false(3).to_dnf(), f);
    }

    #[test]
    fn minimization_on_construction() {
        let dnf = MonotoneDnf::new(4, vec![s(&[0]), s(&[0, 1]), s(&[0])]);
        assert_eq!(dnf.terms(), &[s(&[0])]);
        let cnf = MonotoneCnf::new(4, vec![s(&[0, 1]), s(&[0])]);
        assert_eq!(cnf.clauses(), &[s(&[0])]);
    }

    #[test]
    fn monotonicity_of_eval() {
        let dnf = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[1, 2])]);
        for bits in 0..16usize {
            let x = AttrSet::from_indices(4, (0..4).filter(|i| bits >> i & 1 == 1));
            if dnf.eval(&x) {
                for sup in dualminer_bitset::ImmediateSupersets::new(&x) {
                    assert!(dnf.eval(&sup));
                }
            }
        }
    }

    #[test]
    fn equivalence_rejects_wrong_pairs() {
        let dnf = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3])]);
        let wrong = MonotoneCnf::new(4, vec![s(&[3])]); // just (D)
        assert!(!equivalent(&dnf, &wrong));
    }

    #[test]
    fn double_dualization_round_trip() {
        let dnf = MonotoneDnf::new(5, vec![s5(&[0, 1]), s5(&[1, 2, 3]), s5(&[4])]);
        assert_eq!(dnf.to_cnf().to_dnf(), dnf);
        fn s5(v: &[usize]) -> AttrSet {
            AttrSet::from_indices(5, v.iter().copied())
        }
    }
}
