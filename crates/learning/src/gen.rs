//! Monotone-function generators for the learning experiments.

use dualminer_bitset::{AttrSet, SubsetsOfSize};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{MonotoneCnf, MonotoneDnf};

/// A random monotone DNF: `m` distinct terms of size `k` (same-size terms
/// are automatically an antichain, so `|DNF(f)| = m` exactly).
pub fn random_dnf<R: Rng + ?Sized>(n: usize, m: usize, k: usize, rng: &mut R) -> MonotoneDnf {
    assert!(k <= n && k >= 1, "term size must be in 1..=n");
    let mut vars: Vec<usize> = (0..n).collect();
    let mut terms: Vec<AttrSet> = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while terms.len() < m && attempts < m * 30 + 100 {
        attempts += 1;
        vars.shuffle(rng);
        let t = AttrSet::from_indices(n, vars[..k].iter().copied());
        if !terms.contains(&t) {
            terms.push(t);
        }
    }
    MonotoneDnf::new(n, terms)
}

/// The matching function `f = ⋁ᵢ x_{2i−1} x_{2i}` — Angluin-style hard
/// instance and the Boolean twin of Example 19: `|DNF| = n/2` but
/// `|CNF| = 2^{n/2}`. Any learner not given `|CNF|` as a resource pays
/// exponentially here (the Corollary 27 discussion).
///
/// # Panics
/// Panics if `n` is odd.
pub fn matching_dnf(n: usize) -> MonotoneDnf {
    assert!(n % 2 == 0, "matching needs an even variable count");
    let terms = (0..n / 2)
        .map(|i| AttrSet::from_indices(n, [2 * i, 2 * i + 1]))
        .collect();
    MonotoneDnf::new(n, terms)
}

/// The threshold function `Th_k^n` (true iff ≥ k variables set):
/// `|DNF| = C(n, k)`, `|CNF| = C(n, n−k+1)` — a balanced stress instance.
pub fn threshold_dnf(n: usize, k: usize) -> MonotoneDnf {
    assert!(k >= 1 && k <= n);
    MonotoneDnf::new(n, SubsetsOfSize::new(n, k).collect())
}

/// A CNF with clauses of size exactly `n − k` (the Corollary 26 regime:
/// all clauses large). The clauses are `m` random co-`k`-sets.
pub fn long_clause_cnf<R: Rng + ?Sized>(n: usize, k: usize, m: usize, rng: &mut R) -> MonotoneCnf {
    assert!(k >= 1 && k < n, "need 1 ≤ k < n");
    let mut vars: Vec<usize> = (0..n).collect();
    let mut clauses = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while clauses.len() < m && attempts < m * 30 + 100 {
        attempts += 1;
        vars.shuffle(rng);
        let missing = AttrSet::from_indices(n, vars[..k].iter().copied());
        let clause = missing.complement();
        if !clauses.contains(&clause) {
            clauses.push(clause);
        }
    }
    MonotoneCnf::new(n, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn random_dnf_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = random_dnf(10, 5, 3, &mut rng);
        assert_eq!(f.len(), 5);
        assert!(f.terms().iter().all(|t| t.len() == 3));
    }

    #[test]
    fn matching_cnf_is_exponential() {
        for half in 1..=4usize {
            let f = matching_dnf(2 * half);
            assert_eq!(f.len(), half);
            assert_eq!(f.to_cnf().len(), 1 << half);
        }
    }

    #[test]
    fn threshold_duality() {
        let f = threshold_dnf(5, 2);
        assert_eq!(f.len(), 10);
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 5); // C(5, 4)
        assert!(cnf.clauses().iter().all(|c| c.len() == 4));
    }

    #[test]
    fn long_clause_cnf_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = long_clause_cnf(10, 2, 4, &mut rng);
        assert!(!f.is_empty());
        assert!(f.clauses().iter().all(|c| c.len() >= 8));
    }
}
