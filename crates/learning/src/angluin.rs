//! Angluin's monotone-DNF learner with membership **and equivalence**
//! queries — the polynomial counterpoint to Corollary 27.
//!
//! The paper's Corollary 27 shows membership queries alone force
//! `≥ |DNF(f)| + |CNF(f)|` queries, explaining Angluin's lower bound
//! (reference \[3\]): the matching function has tiny DNF but exponential
//! CNF, so MQ-only learners pay exponentially. Angluin's classical
//! *upper* bound says adding an **equivalence oracle** collapses the cost
//! to polynomial in `|DNF|` alone:
//!
//! 1. hypothesis `h := false`;
//! 2. ask `EQ(h)`; a counterexample must be positive (`f(x)=1, h(x)=0`,
//!    since `h ≤ f` throughout);
//! 3. shrink `x` to a *minimal* true point with ≤ `n` membership queries
//!    (greedy removal) — that is a prime implicant of `f`;
//! 4. add it as a term and repeat. Each round adds a distinct term, so
//!    there are exactly `|DNF(f)| + 1` equivalence queries and
//!    `≤ |DNF(f)| · n` membership queries.
//!
//! The equivalence oracle here is *implemented with the
//! Fredman–Khachiyan duality check* ([`crate::func::equivalent`]'s
//! machinery): testing `h ≡ f` for monotone `h, f` given as DNFs is a
//! dualization question — which is the paper's Section 6 correspondence
//! running in the opposite direction one more time.

use dualminer_bitset::AttrSet;

use crate::oracle::MembershipOracle;
use crate::MonotoneDnf;

/// An equivalence-query oracle for a hidden monotone function: given a
/// hypothesis DNF, answer "equivalent" or produce a counterexample point.
pub trait EquivalenceOracle {
    /// Number of variables.
    fn n_vars(&self) -> usize;

    /// `EQ(h)`: `None` if `h` computes the hidden function, otherwise
    /// some `x` with `h(x) ≠ f(x)`.
    fn counterexample(&mut self, hypothesis: &MonotoneDnf) -> Option<AttrSet>;
}

/// An equivalence oracle for a concrete [`MonotoneDnf`] target, answered
/// by brute force over the union of relevant variables when small and by
/// term/clause-wise reasoning otherwise.
///
/// For monotone `h ≤ f` (the Angluin invariant) a counterexample is a
/// point where `f` is 1 and `h` is 0; any term of `f` not implied by `h`
/// provides one directly, so no exponential search is ever needed.
#[derive(Clone, Debug)]
pub struct FuncEq {
    target: MonotoneDnf,
    queries: u64,
}

impl FuncEq {
    /// Wraps a hidden target.
    pub fn new(target: MonotoneDnf) -> Self {
        FuncEq { target, queries: 0 }
    }

    /// Equivalence queries asked so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

impl EquivalenceOracle for FuncEq {
    fn n_vars(&self) -> usize {
        self.target.n_vars()
    }

    fn counterexample(&mut self, hypothesis: &MonotoneDnf) -> Option<AttrSet> {
        self.queries += 1;
        // f-side terms not covered by h: positive counterexamples.
        for t in self.target.terms() {
            if !hypothesis.eval(t) {
                return Some(t.clone());
            }
        }
        // h-side terms where f is 0: negative counterexamples (cannot
        // happen inside Angluin's loop, but the oracle is general).
        for t in hypothesis.terms() {
            if !self.target.eval(t) {
                return Some(t.clone());
            }
        }
        // Both term families imply each other ⇒ equivalent (monotone).
        None
    }
}

/// Result of an MQ+EQ learning run.
#[derive(Clone, Debug)]
pub struct AngluinRun {
    /// The learned minimum DNF (exactly the target's prime implicants).
    pub dnf: MonotoneDnf,
    /// Membership queries spent — ≤ `|DNF|·n`.
    pub membership_queries: u64,
    /// Equivalence queries spent — exactly `|DNF| + 1`.
    pub equivalence_queries: u64,
}

/// Learns a monotone DNF exactly from membership + equivalence queries.
pub fn learn_monotone_mq_eq<M, E>(mut mq: M, mut eq: E) -> AngluinRun
where
    M: MembershipOracle,
    E: EquivalenceOracle,
{
    let n = mq.n_vars();
    assert_eq!(n, eq.n_vars(), "oracles disagree on the variable count");
    let mut terms: Vec<AttrSet> = Vec::new();
    let mut membership_queries = 0u64;
    let mut equivalence_queries = 0u64;

    loop {
        let hypothesis = MonotoneDnf::new(n, terms.clone());
        equivalence_queries += 1;
        let Some(mut x) = eq.counterexample(&hypothesis) else {
            return AngluinRun {
                dnf: hypothesis,
                membership_queries,
                equivalence_queries,
            };
        };
        debug_assert!(!hypothesis.eval(&x), "counterexample must be positive");
        // Greedy descent to a minimal true point (≤ n MQs).
        for v in x.clone().iter() {
            x.remove(v);
            membership_queries += 1;
            if !mq.query(&x) {
                x.insert(v);
            }
        }
        terms.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{matching_dnf, random_dnf};
    use crate::{CountingMq, FuncMq};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn learns_example_25_function() {
        let n = 4;
        let target = MonotoneDnf::new(
            n,
            vec![
                AttrSet::from_indices(n, [0, 3]),
                AttrSet::from_indices(n, [2, 3]),
            ],
        );
        let run = learn_monotone_mq_eq(FuncMq::new(target.clone()), FuncEq::new(target.clone()));
        assert_eq!(run.dnf, target);
        assert_eq!(run.equivalence_queries, 3); // |DNF| + 1
        assert!(run.membership_queries <= 2 * 4);
    }

    #[test]
    fn polynomial_on_the_matching_function() {
        // The Corollary 27 contrast: MQ-only learners pay for the 2^(n/2)
        // CNF; with EQ the bill is |DNF|·n-ish.
        for n in [8usize, 12, 16, 20] {
            let target = matching_dnf(n);
            let mq = CountingMq::new(FuncMq::new(target.clone()));
            let run = learn_monotone_mq_eq(mq, FuncEq::new(target.clone()));
            assert_eq!(run.dnf, target);
            assert_eq!(run.equivalence_queries as usize, n / 2 + 1);
            assert!(
                run.membership_queries as usize <= (n / 2) * n,
                "n={n}: {} MQs",
                run.membership_queries
            );
        }
    }

    #[test]
    fn learns_random_targets() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..15 {
            let target = random_dnf(10, 5, 3, &mut rng);
            let run =
                learn_monotone_mq_eq(FuncMq::new(target.clone()), FuncEq::new(target.clone()));
            assert_eq!(run.dnf, target);
            assert_eq!(run.equivalence_queries, target.len() as u64 + 1);
            assert!(run.membership_queries <= target.len() as u64 * 10);
        }
    }

    #[test]
    fn learns_constants() {
        let t = MonotoneDnf::constant_true(3);
        let run = learn_monotone_mq_eq(FuncMq::new(t.clone()), FuncEq::new(t.clone()));
        assert_eq!(run.dnf, t);
        let f = MonotoneDnf::constant_false(3);
        let run = learn_monotone_mq_eq(FuncMq::new(f.clone()), FuncEq::new(f.clone()));
        assert_eq!(run.dnf, f);
        assert_eq!(run.equivalence_queries, 1);
    }

    #[test]
    fn eq_oracle_counterexamples_are_genuine() {
        let target = MonotoneDnf::new(
            4,
            vec![
                AttrSet::from_indices(4, [0, 1]),
                AttrSet::from_indices(4, [2]),
            ],
        );
        let mut eq = FuncEq::new(target.clone());
        let wrong = MonotoneDnf::new(4, vec![AttrSet::from_indices(4, [0, 1])]);
        let x = eq.counterexample(&wrong).expect("not equivalent");
        assert_ne!(target.eval(&x), wrong.eval(&x));
        assert!(eq.counterexample(&target).is_none());
    }
}
