//! Membership-query oracles and the Theorem 24 bridge.
//!
//! Angluin's exact-learning model (reference \[3\]): the learner may ask
//! `MQ(f)` for the value `f(x)` at any point `x ∈ {0,1}ⁿ`. Theorem 24
//! identifies this with the mining model: `f(x) = ¬q(r, set(x))` — a
//! membership query *is* an `Is-interesting` query with the answer
//! flipped. [`MqAsInterest`] and [`InterestAsMq`] are the two directions
//! of that bridge, so the mining algorithms in `dualminer-core` learn
//! monotone functions unchanged.

use dualminer_bitset::AttrSet;
use dualminer_core::oracle::InterestOracle;

use crate::MonotoneDnf;

/// A membership-query oracle for a hidden Boolean function over `n`
/// variables.
pub trait MembershipOracle {
    /// Number of variables.
    fn n_vars(&self) -> usize;

    /// `MQ(f)`: the value `f(x)` on the assignment with true set `x`.
    fn query(&mut self, x: &AttrSet) -> bool;
}

impl<T: MembershipOracle + ?Sized> MembershipOracle for &mut T {
    fn n_vars(&self) -> usize {
        (**self).n_vars()
    }
    fn query(&mut self, x: &AttrSet) -> bool {
        (**self).query(x)
    }
}

/// A membership oracle hiding a concrete [`MonotoneDnf`] target.
#[derive(Clone, Debug)]
pub struct FuncMq {
    target: MonotoneDnf,
}

impl FuncMq {
    /// Hides `target` behind the oracle interface.
    pub fn new(target: MonotoneDnf) -> Self {
        FuncMq { target }
    }

    /// The hidden function (for test assertions only — a learner must not
    /// touch this).
    pub fn target(&self) -> &MonotoneDnf {
        &self.target
    }
}

impl MembershipOracle for FuncMq {
    fn n_vars(&self) -> usize {
        self.target.n_vars()
    }

    fn query(&mut self, x: &AttrSet) -> bool {
        self.target.eval(x)
    }
}

/// Counts distinct membership queries (the measure of Corollaries 27–29).
#[derive(Debug)]
pub struct CountingMq<M> {
    inner: M,
    cache: std::collections::HashMap<AttrSet, bool>,
    raw: u64,
}

impl<M: MembershipOracle> CountingMq<M> {
    /// Wraps an oracle with counting + memoization.
    pub fn new(inner: M) -> Self {
        CountingMq {
            inner,
            cache: std::collections::HashMap::new(),
            raw: 0,
        }
    }

    /// Distinct points queried.
    pub fn distinct_queries(&self) -> u64 {
        self.cache.len() as u64
    }

    /// All calls including repeats.
    pub fn raw_queries(&self) -> u64 {
        self.raw
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: MembershipOracle> MembershipOracle for CountingMq<M> {
    fn n_vars(&self) -> usize {
        self.inner.n_vars()
    }

    fn query(&mut self, x: &AttrSet) -> bool {
        self.raw += 1;
        if let Some(&v) = self.cache.get(x) {
            return v;
        }
        let v = self.inner.query(x);
        self.cache.insert(x.clone(), v);
        v
    }
}

/// Theorem 24, mining→learning direction: view a membership oracle as an
/// `Is-interesting` oracle via `q(x) = ¬f(x)`.
///
/// `f` monotone (upward closed true set) makes `q` downward closed, as the
/// framework requires.
#[derive(Debug)]
pub struct MqAsInterest<M>(pub M);

impl<M: MembershipOracle> InterestOracle for MqAsInterest<M> {
    fn universe_size(&self) -> usize {
        self.0.n_vars()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        !self.0.query(x)
    }
}

/// Theorem 24, learning→mining direction: view an `Is-interesting` oracle
/// as a membership oracle for the monotone function `f = ¬q`.
#[derive(Debug)]
pub struct InterestAsMq<O>(pub O);

impl<O: InterestOracle> MembershipOracle for InterestAsMq<O> {
    fn n_vars(&self) -> usize {
        self.0.universe_size()
    }

    fn query(&mut self, x: &AttrSet) -> bool {
        !self.0.is_interesting(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualminer_core::oracle::FamilyOracle;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(4, v.iter().copied())
    }

    #[test]
    fn func_oracle_answers() {
        let f = MonotoneDnf::new(4, vec![s(&[0, 3]), s(&[2, 3])]);
        let mut mq = FuncMq::new(f);
        assert!(mq.query(&s(&[0, 3])));
        assert!(mq.query(&s(&[0, 2, 3])));
        assert!(!mq.query(&s(&[0, 1, 2])));
        assert!(!mq.query(&s(&[])));
    }

    #[test]
    fn counting_mq() {
        let f = MonotoneDnf::new(4, vec![s(&[0])]);
        let mut mq = CountingMq::new(FuncMq::new(f));
        mq.query(&s(&[0]));
        mq.query(&s(&[0]));
        mq.query(&s(&[1]));
        assert_eq!(mq.distinct_queries(), 2);
        assert_eq!(mq.raw_queries(), 3);
    }

    #[test]
    fn bridge_round_trip() {
        // f = ¬q where q = "subset of {0,1,2} or {1,3}" (Figure 1).
        let q = FamilyOracle::new(4, vec![s(&[0, 1, 2]), s(&[1, 3])]);
        let mut f = InterestAsMq(q);
        assert!(!f.query(&s(&[0, 1])));
        assert!(f.query(&s(&[0, 3]))); // AD is not under any maximal set
                                       // And back: MqAsInterest(InterestAsMq(q)) ≡ q.
        let mut q2 = MqAsInterest(f);
        assert!(q2.is_interesting(&s(&[0, 1])));
        assert!(!q2.is_interesting(&s(&[0, 3])));
    }
}
