//! Property tests: the three key-discovery paths agree on random
//! relations, discovered keys/FDs are sound and minimal, and the Armstrong
//! construction realizes planted agree-set antichains.

use dualminer_bitset::AttrSet;
use dualminer_fdep::fd::{minimal_fd_lhs_dualize_advance, minimal_fd_lhs_via_agree_sets};
use dualminer_fdep::keys::{
    minimal_keys_dualize_advance, minimal_keys_levelwise, minimal_keys_via_agree_sets,
};
use dualminer_fdep::Relation;
use dualminer_hypergraph::TrAlgorithm;
use proptest::prelude::*;

const N: usize = 5;

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0u32..3, N), 0..8)
        .prop_map(|rows| Relation::new(N, rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn key_paths_agree(rel in arb_relation()) {
        let direct = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge);
        let da = minimal_keys_dualize_advance(&rel, TrAlgorithm::FkJointGeneration);
        let lw = minimal_keys_levelwise(&rel);
        prop_assert_eq!(&direct.minimal_keys, &da.minimal_keys);
        prop_assert_eq!(&direct.minimal_keys, &lw.minimal_keys);
        prop_assert_eq!(&direct.maximal_non_superkeys, &da.maximal_non_superkeys);
        prop_assert_eq!(&direct.maximal_non_superkeys, &lw.maximal_non_superkeys);
    }

    #[test]
    fn keys_sound_and_minimal(rel in arb_relation()) {
        let keys = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge).minimal_keys;
        for k in &keys {
            prop_assert!(rel.is_superkey(k));
            for sub in dualminer_bitset::ImmediateSubsets::new(k) {
                prop_assert!(!rel.is_superkey(&sub));
            }
        }
        // Completeness: every minimal superkey is listed (brute force).
        for bits in 0..(1usize << N) {
            let x = AttrSet::from_indices(N, (0..N).filter(|i| bits >> i & 1 == 1));
            let minimal_superkey = rel.is_superkey(&x)
                && dualminer_bitset::ImmediateSubsets::new(&x)
                    .all(|s| !rel.is_superkey(&s));
            prop_assert_eq!(minimal_superkey, keys.contains(&x), "{:?}", x);
        }
    }

    #[test]
    fn fd_paths_agree_and_are_sound(rel in arb_relation(), target in 0usize..N) {
        let direct = minimal_fd_lhs_via_agree_sets(&rel, target, TrAlgorithm::Berge);
        let da = minimal_fd_lhs_dualize_advance(&rel, target, TrAlgorithm::Berge);
        prop_assert_eq!(&direct.minimal_lhs, &da.minimal_lhs);
        for lhs in &direct.minimal_lhs {
            prop_assert!(!lhs.contains(target));
            prop_assert!(rel.fd_holds(lhs, target));
            for sub in dualminer_bitset::ImmediateSubsets::new(lhs) {
                prop_assert!(!rel.fd_holds(&sub, target));
            }
        }
    }

    #[test]
    fn armstrong_realizes_antichains(
        raw in proptest::collection::vec(proptest::collection::vec(0..N, 1..N), 1..4)
    ) {
        let sets: Vec<AttrSet> = raw
            .into_iter()
            .map(|v| AttrSet::from_indices(N, v))
            .filter(|s| s.len() < N)
            .collect();
        prop_assume!(!sets.is_empty());
        let mut plants = dualminer_hypergraph::maximize_family(sets);
        plants.sort_by(|a, b| a.cmp_card_lex(b));
        let rel = Relation::armstrong(N, &plants);
        let got = dualminer_fdep::agree::maximal_agree_sets(&rel);
        prop_assert_eq!(got, plants);
    }

    #[test]
    fn keys_transversal_duality(rel in arb_relation()) {
        // The minimal keys and the complements of the maximal agree sets
        // must be a dual pair (Theorem 7 at the FD instance).
        let d = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge);
        let complements = dualminer_hypergraph::Hypergraph::from_edges(
            N,
            d.maximal_non_superkeys.iter().map(AttrSet::complement).collect(),
        ).unwrap();
        let keys = dualminer_hypergraph::Hypergraph::from_edges(
            N, d.minimal_keys.clone(),
        ).unwrap();
        prop_assert!(dualminer_hypergraph::fk::are_dual(&complements, &keys));
    }
}
