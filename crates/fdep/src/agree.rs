//! Agree sets: the `Bd⁺` of the key-discovery theory, computed directly
//! from the data.
//!
//! `ag(t, u) = {A ∈ R : t[A] = u[A]}` for a row pair. A set `X` fails to
//! be a superkey iff `X ⊆ ag(t, u)` for some pair, so the maximal agree
//! sets are exactly the maximal non-superkeys — `MTh` of the key-discovery
//! instance, which the paper's Section 5 remark says can be read off the
//! database without `Is-interesting` queries.

use dualminer_bitset::AttrSet;
use dualminer_hypergraph::maximize_family;

use crate::Relation;

/// The agree set of one row pair.
pub fn agree_set(rel: &Relation, t: usize, u: usize) -> AttrSet {
    let n = rel.n_attrs();
    let (rt, ru) = (&rel.rows()[t], &rel.rows()[u]);
    AttrSet::from_indices(n, (0..n).filter(|&a| rt[a] == ru[a]))
}

/// All distinct pairwise agree sets (`O(rows² · n)`), card-lex sorted.
pub fn agree_sets(rel: &Relation) -> Vec<AttrSet> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for t in 0..rel.n_rows() {
        for u in t + 1..rel.n_rows() {
            let ag = agree_set(rel, t, u);
            if seen.insert(ag.clone()) {
                out.push(ag);
            }
        }
    }
    out.sort_by(|a, b| a.cmp_card_lex(b));
    out
}

/// The ⊆-maximal agree sets — `Bd⁺(Th)` of the key-discovery instance,
/// card-lex sorted.
pub fn maximal_agree_sets(rel: &Relation) -> Vec<AttrSet> {
    let mut m = maximize_family(agree_sets(rel));
    m.sort_by(|a, b| a.cmp_card_lex(b));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Relation {
        Relation::new(3, vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 1, 0]])
    }

    #[test]
    fn pairwise_agree_sets() {
        let r = toy();
        assert_eq!(agree_set(&r, 0, 1).to_vec(), vec![0]); // agree on A
        assert_eq!(agree_set(&r, 0, 2).to_vec(), vec![2]); // agree on C
        assert_eq!(agree_set(&r, 1, 2).to_vec(), vec![1]); // agree on B
    }

    #[test]
    fn all_and_maximal() {
        let r = toy();
        let all = agree_sets(&r);
        assert_eq!(all.len(), 3);
        assert_eq!(maximal_agree_sets(&r), all); // singletons, an antichain
    }

    #[test]
    fn agreement_characterizes_non_superkeys() {
        let r = toy();
        let max_ag = maximal_agree_sets(&r);
        for bits in 0..8usize {
            let x = AttrSet::from_indices(3, (0..3).filter(|i| bits >> i & 1 == 1));
            let non_superkey = max_ag.iter().any(|ag| x.is_subset(ag));
            assert_eq!(!r.is_superkey(&x), non_superkey, "{x:?}");
        }
    }

    #[test]
    fn identical_rows_agree_everywhere() {
        let r = Relation::new(2, vec![vec![1, 2], vec![1, 2]]);
        assert_eq!(agree_set(&r, 0, 1), AttrSet::full(2));
        // No superkey exists at all — even R is not a key.
        assert!(!r.is_superkey(&AttrSet::full(2)));
    }

    #[test]
    fn single_row_has_no_agree_sets() {
        let r = Relation::new(3, vec![vec![1, 2, 3]]);
        assert!(agree_sets(&r).is_empty());
        assert!(maximal_agree_sets(&r).is_empty());
    }
}
