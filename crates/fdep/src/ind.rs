//! Inclusion dependencies — the third database instance the paper names
//! ("finding keys or inclusion dependencies from relation instances
//! \[17\]", Section 1), easily representable as sets.
//!
//! Setting: two relation instances `r` and `s` over the same attribute
//! schema (e.g. this month's and last month's snapshot of a table). For
//! `X ⊆ R`, the (aligned) inclusion dependency `r[X] ⊆ s[X]` holds iff
//! every `X`-projection of an `r`-row appears among the `X`-projections
//! of `s`-rows. Shrinking `X` only makes inclusion easier, so
//! *interesting = the IND holds* is monotone, the theory is the set of
//! included attribute sets, `MTh` is the **maximal satisfied INDs**, and
//! the whole framework applies with the identity representation.

use dualminer_bitset::AttrSet;
use dualminer_core::dualize_advance::dualize_advance;
use dualminer_core::levelwise::levelwise;
use dualminer_core::oracle::{CountingOracle, InterestOracle};
use dualminer_hypergraph::TrAlgorithm;

use crate::Relation;

/// The IND `Is-interesting` oracle: interesting iff `r[X] ⊆ s[X]`.
#[derive(Clone, Debug)]
pub struct InclusionOracle<'a> {
    r: &'a Relation,
    s: &'a Relation,
}

impl<'a> InclusionOracle<'a> {
    /// Builds the oracle for `r[X] ⊆ s[X]` queries.
    ///
    /// # Panics
    /// Panics if the relations have different schemas (attribute counts).
    pub fn new(r: &'a Relation, s: &'a Relation) -> Self {
        assert_eq!(
            r.n_attrs(),
            s.n_attrs(),
            "aligned INDs need a common schema"
        );
        InclusionOracle { r, s }
    }

    /// Direct test of `r[X] ⊆ s[X]`.
    pub fn ind_holds(&self, x: &AttrSet) -> bool {
        let project = |rows: &[Vec<u32>]| -> std::collections::HashSet<Vec<u32>> {
            rows.iter()
                .map(|row| x.iter().map(|a| row[a]).collect())
                .collect()
        };
        let s_proj = project(self.s.rows());
        self.r
            .rows()
            .iter()
            .all(|row| s_proj.contains(&x.iter().map(|a| row[a]).collect::<Vec<u32>>()))
    }
}

impl InterestOracle for InclusionOracle<'_> {
    fn universe_size(&self) -> usize {
        self.r.n_attrs()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        self.ind_holds(x)
    }
}

/// Output of IND discovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndDiscovery {
    /// Maximal attribute sets with `r[X] ⊆ s[X]`, card-lex sorted.
    pub maximal_inds: Vec<AttrSet>,
    /// Minimal violated sets — the certificate (`Bd⁻`).
    pub minimal_violations: Vec<AttrSet>,
    /// Distinct `Is-interesting` queries.
    pub queries: u64,
}

/// Discovers the maximal satisfied INDs with Dualize & Advance.
pub fn maximal_inds_dualize_advance(r: &Relation, s: &Relation, algo: TrAlgorithm) -> IndDiscovery {
    let mut oracle = CountingOracle::new(InclusionOracle::new(r, s));
    let run = dualize_advance(&mut oracle, algo);
    IndDiscovery {
        maximal_inds: run.maximal,
        minimal_violations: run.negative_border,
        queries: oracle.distinct_queries(),
    }
}

/// Discovers the maximal satisfied INDs with the levelwise algorithm.
pub fn maximal_inds_levelwise(r: &Relation, s: &Relation) -> IndDiscovery {
    let mut oracle = CountingOracle::new(InclusionOracle::new(r, s));
    let run = levelwise(&mut oracle);
    IndDiscovery {
        maximal_inds: run.positive_border,
        minimal_violations: run.negative_border,
        queries: oracle.distinct_queries(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s: the "old" snapshot; r: the "new" one with one drifted column.
    fn pair() -> (Relation, Relation) {
        let s = Relation::new(
            3,
            vec![vec![1, 10, 100], vec![2, 20, 200], vec![3, 30, 300]],
        );
        // r's rows exist in s on attributes {0,1}, but attribute 2 drifted
        // on the second row.
        let r = Relation::new(3, vec![vec![1, 10, 100], vec![2, 20, 999]]);
        (r, s)
    }

    #[test]
    fn direct_ind_tests() {
        let (r, s) = pair();
        let o = InclusionOracle::new(&r, &s);
        assert!(o.ind_holds(&AttrSet::from_indices(3, [0, 1])));
        assert!(!o.ind_holds(&AttrSet::from_indices(3, [2])));
        assert!(o.ind_holds(&AttrSet::empty(3)));
    }

    #[test]
    fn discovery_both_algorithms_agree() {
        let (r, s) = pair();
        let da = maximal_inds_dualize_advance(&r, &s, TrAlgorithm::Berge);
        let lw = maximal_inds_levelwise(&r, &s);
        assert_eq!(da.maximal_inds, lw.maximal_inds);
        assert_eq!(da.minimal_violations, lw.minimal_violations);
        // Maximal satisfied IND is exactly {0,1}; the minimal violation
        // is {2}.
        assert_eq!(da.maximal_inds, vec![AttrSet::from_indices(3, [0, 1])]);
        assert_eq!(da.minimal_violations, vec![AttrSet::from_indices(3, [2])]);
    }

    #[test]
    fn identical_relations_have_full_ind() {
        let s = Relation::new(2, vec![vec![1, 2], vec![3, 4]]);
        let da = maximal_inds_dualize_advance(&s, &s, TrAlgorithm::Berge);
        assert_eq!(da.maximal_inds, vec![AttrSet::full(2)]);
        assert!(da.minimal_violations.is_empty());
    }

    #[test]
    fn disjoint_relations_only_empty_ind() {
        let r = Relation::new(2, vec![vec![1, 1]]);
        let s = Relation::new(2, vec![vec![2, 2]]);
        let da = maximal_inds_dualize_advance(&r, &s, TrAlgorithm::Berge);
        // ∅ always holds (empty projection of nonempty r is the empty
        // tuple, present in nonempty s); singletons fail.
        assert_eq!(da.maximal_inds, vec![AttrSet::empty(2)]);
        assert_eq!(da.minimal_violations.len(), 2);
    }

    #[test]
    fn empty_r_gives_full_ind() {
        let r = Relation::new(2, vec![]);
        let s = Relation::new(2, vec![vec![1, 2]]);
        let da = maximal_inds_dualize_advance(&r, &s, TrAlgorithm::Berge);
        assert_eq!(da.maximal_inds, vec![AttrSet::full(2)]);
    }

    #[test]
    fn monotonicity_spot_check() {
        let (r, s) = pair();
        let mut o = InclusionOracle::new(&r, &s);
        let samples: Vec<AttrSet> = (0..8usize)
            .map(|b| AttrSet::from_indices(3, (0..3).filter(|i| b >> i & 1 == 1)))
            .collect();
        assert_eq!(
            dualminer_core::oracle::check_monotone(&mut o, &samples),
            None
        );
    }

    #[test]
    #[should_panic(expected = "common schema")]
    fn schema_mismatch_rejected() {
        let r = Relation::new(2, vec![]);
        let s = Relation::new(3, vec![]);
        InclusionOracle::new(&r, &s);
    }
}
