//! Relation instances over categorical domains.

use dualminer_bitset::AttrSet;
use rand::Rng;

/// A relation instance: `n_attrs` columns of `u32`-coded categorical
/// values, row-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    n_attrs: usize,
    rows: Vec<Vec<u32>>,
}

impl Relation {
    /// Builds a relation from rows.
    ///
    /// # Panics
    /// Panics if any row's width differs from `n_attrs`.
    pub fn new(n_attrs: usize, rows: Vec<Vec<u32>>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), n_attrs, "row width does not match attribute count");
        }
        Relation { n_attrs, rows }
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Number of tuples (rows).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The tuples.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Whether two rows agree on every attribute of `x`.
    pub fn rows_agree_on(&self, t: usize, u: usize, x: &AttrSet) -> bool {
        x.iter().all(|a| self.rows[t][a] == self.rows[u][a])
    }

    /// Whether `x` is a **superkey**: no two distinct rows agree on all of
    /// `x`. The empty set is a superkey iff the relation has ≤ 1 row.
    ///
    /// Hash-grouping on the projection: `O(rows · |x|)`.
    pub fn is_superkey(&self, x: &AttrSet) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.rows.len());
        for row in &self.rows {
            let proj: Vec<u32> = x.iter().map(|a| row[a]).collect();
            if !seen.insert(proj) {
                return false;
            }
        }
        true
    }

    /// Whether the FD `x → a` holds: any two rows agreeing on `x` also
    /// agree on attribute `a`.
    pub fn fd_holds(&self, x: &AttrSet, a: usize) -> bool {
        let mut seen: std::collections::HashMap<Vec<u32>, u32> =
            std::collections::HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            let proj: Vec<u32> = x.iter().map(|i| row[i]).collect();
            match seen.entry(proj) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != row[a] {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(row[a]);
                }
            }
        }
        true
    }

    /// A random relation: each cell uniform in `0..domain`.
    pub fn random<R: Rng + ?Sized>(
        n_attrs: usize,
        n_rows: usize,
        domain: u32,
        rng: &mut R,
    ) -> Self {
        assert!(domain > 0);
        let rows = (0..n_rows)
            .map(|_| (0..n_attrs).map(|_| rng.gen_range(0..domain)).collect())
            .collect();
        Relation::new(n_attrs, rows)
    }

    /// The Armstrong-style construction (Mannila–Räihä): a relation whose
    /// maximal agree sets are exactly the ⊆-maximal members of `plants`.
    ///
    /// Row 0 is all zeros; row `i ≥ 1` agrees with row 0 exactly on
    /// `plants[i−1]` (other cells get the unique value `i`). Any two
    /// planted rows then agree exactly on the intersection of their
    /// plants, which is dominated — so the agree-set antichain is the
    /// plant antichain.
    ///
    /// # Panics
    /// Panics if a plant is the full attribute set (two identical rows
    /// would make *no* set a key) or lives in the wrong universe.
    pub fn armstrong(n_attrs: usize, plants: &[AttrSet]) -> Self {
        let mut rows = vec![vec![0u32; n_attrs]];
        for (i, p) in plants.iter().enumerate() {
            assert_eq!(p.universe_size(), n_attrs, "plant outside universe");
            assert!(
                p.len() < n_attrs,
                "a full-universe agree set would duplicate rows"
            );
            let fill = (i + 1) as u32;
            let row = (0..n_attrs)
                .map(|a| if p.contains(a) { 0 } else { fill })
                .collect();
            rows.push(row);
        }
        Relation::new(n_attrs, rows)
    }
}

impl Relation {
    /// Encodes the relation as transactions: each `(attribute, value)`
    /// pair becomes one item, each tuple the set of its pairs — the
    /// standard benchmark encoding that lets itemset miners run on
    /// relational data (so the paper's frequent-set and key-discovery
    /// instances can meet on a single dataset).
    ///
    /// Returns the transaction rows plus, for provenance, the
    /// `(attribute, value)` pair behind each item index. Every row has
    /// exactly `n_attrs` items.
    pub fn to_transactions(&self) -> (Vec<AttrSet>, Vec<(usize, u32)>) {
        let mut items: Vec<(usize, u32)> = Vec::new();
        let mut index: std::collections::HashMap<(usize, u32), usize> =
            std::collections::HashMap::new();
        // First pass: stable item numbering by (column, value).
        for row in &self.rows {
            for (a, &v) in row.iter().enumerate() {
                index.entry((a, v)).or_insert_with(|| {
                    items.push((a, v));
                    items.len() - 1
                });
            }
        }
        let n_items = items.len();
        let rows = self
            .rows
            .iter()
            .map(|row| {
                AttrSet::from_indices(
                    n_items,
                    row.iter().enumerate().map(|(a, &v)| index[&(a, v)]),
                )
            })
            .collect();
        (rows, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Relation {
        // A B C
        Relation::new(3, vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 1, 0]])
    }

    #[test]
    fn superkey_tests() {
        let r = toy();
        assert!(!r.is_superkey(&AttrSet::empty(3)));
        assert!(!r.is_superkey(&AttrSet::from_indices(3, [0]))); // A: rows 0,1 agree
        assert!(!r.is_superkey(&AttrSet::from_indices(3, [1]))); // B: rows 1,2 agree
        assert!(r.is_superkey(&AttrSet::from_indices(3, [0, 1]))); // AB distinct
        assert!(r.is_superkey(&AttrSet::full(3)));
    }

    #[test]
    fn empty_set_superkey_of_tiny_relations() {
        assert!(Relation::new(2, vec![]).is_superkey(&AttrSet::empty(2)));
        assert!(Relation::new(2, vec![vec![0, 0]]).is_superkey(&AttrSet::empty(2)));
    }

    #[test]
    fn fd_holds_tests() {
        let r = toy();
        // A → B? rows 0,1 agree on A (=0) but B differs (0 vs 1): no.
        assert!(!r.fd_holds(&AttrSet::from_indices(3, [0]), 1));
        // C → A? C=0: rows 0,2, A differs: no.
        assert!(!r.fd_holds(&AttrSet::from_indices(3, [2]), 0));
        // AB is a key, so AB → C holds.
        assert!(r.fd_holds(&AttrSet::from_indices(3, [0, 1]), 2));
        // ∅ → A holds iff column A constant: it is not.
        assert!(!r.fd_holds(&AttrSet::empty(3), 0));
    }

    #[test]
    fn rows_agree_on() {
        let r = toy();
        assert!(r.rows_agree_on(0, 1, &AttrSet::from_indices(3, [0])));
        assert!(!r.rows_agree_on(0, 1, &AttrSet::from_indices(3, [0, 1])));
        assert!(r.rows_agree_on(0, 2, &AttrSet::empty(3)));
    }

    #[test]
    fn armstrong_realizes_plants() {
        let plants = vec![
            AttrSet::from_indices(4, [0, 1]),
            AttrSet::from_indices(4, [1, 2, 3]),
        ];
        let r = Relation::armstrong(4, &plants);
        assert_eq!(r.n_rows(), 3);
        // Row 1 agrees with row 0 exactly on {0,1}.
        assert!(r.rows_agree_on(0, 1, &plants[0]));
        assert!(!r.rows_agree_on(0, 1, &AttrSet::from_indices(4, [0, 1, 2])));
    }

    #[test]
    #[should_panic(expected = "full-universe")]
    fn armstrong_rejects_full_plant() {
        Relation::armstrong(3, &[AttrSet::full(3)]);
    }

    #[test]
    fn to_transactions_encoding() {
        let r = Relation::new(2, vec![vec![0, 5], vec![0, 6], vec![1, 5]]);
        let (rows, items) = r.to_transactions();
        assert_eq!(rows.len(), 3);
        assert_eq!(items.len(), 4); // (0,0), (1,5), (0,1)... distinct pairs
                                    // Every row has one item per attribute.
        assert!(rows.iter().all(|row| row.len() == 2));
        // Rows 0 and 1 share the item for (attr 0, value 0).
        let shared = rows[0].intersection(&rows[1]);
        assert_eq!(shared.len(), 1);
        let item = shared.first().unwrap();
        assert_eq!(items[item], (0, 0));
        // Rows 0 and 2 share (attr 1, value 5).
        let shared = rows[0].intersection(&rows[2]);
        assert_eq!(items[shared.first().unwrap()], (1, 5));
    }

    #[test]
    fn random_shape() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let r = Relation::random(5, 20, 3, &mut rng);
        assert_eq!(r.n_attrs(), 5);
        assert_eq!(r.n_rows(), 20);
        assert!(r.rows().iter().flatten().all(|&v| v < 3));
    }
}
