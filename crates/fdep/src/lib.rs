//! # dualminer-fdep
//!
//! Key and functional-dependency discovery from relation instances — the
//! paper's database-theory instance of the MaxTh framework (Sections 1, 2
//! and the Section 5 closing remark).
//!
//! The mapping: declare `X ⊆ R` **interesting iff X is not a superkey**
//! (two rows agree on all of `X`). The predicate is monotone — shrinking
//! `X` only merges more rows — and:
//!
//! * `MTh` = the maximal non-superkeys = the **maximal agree sets** of the
//!   relation;
//! * `Bd⁻(MTh)` = the minimal sets that *are* superkeys = the **minimal
//!   keys**, which by Theorem 7 are the minimal transversals of the
//!   complements of the maximal agree sets (Mannila–Räihä, refs \[16, 17\]).
//!
//! The Section 5 remark — *"for functional dependencies with fixed right
//! hand side, and for keys, even simpler algorithms can be used … one can
//! access the database and directly compute `Bd⁺(MTh)`"* — is
//! [`keys::minimal_keys_via_agree_sets`]: one pass over row pairs computes
//! the agree sets, then a single HTR run yields all minimal keys. The
//! oracle-only algorithms (levelwise, Dualize & Advance) solve the same
//! problem under the restricted `Is-interesting` access model; experiment
//! E12 compares their query bills.
//!
//! FDs with a fixed right-hand side `A` (module [`fd`]) work the same way
//! over the reduced universe `R \ {A}` — a genuinely non-identity
//! representation-as-sets (Definition 6), implemented as
//! [`fd::FdLhsRepresentation`]. Aligned inclusion dependencies — the third
//! instance the paper names — live in [`ind`]: `r[X] ⊆ s[X]` is monotone
//! in `X`, so the maximal satisfied INDs are another `MTh`.

//! # Example
//!
//! ```
//! use dualminer_fdep::keys::minimal_keys_via_agree_sets;
//! use dualminer_fdep::Relation;
//! use dualminer_hypergraph::TrAlgorithm;
//!
//! let rel = Relation::new(3, vec![
//!     vec![0, 0, 0],
//!     vec![0, 1, 1],
//!     vec![1, 1, 0],
//! ]);
//! let keys = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge);
//! // Agree sets are the singletons, so every pair is a minimal key.
//! assert_eq!(keys.minimal_keys.len(), 3);
//! assert_eq!(keys.queries, 0); // no Is-interesting queries needed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agree;
pub mod fd;
pub mod ind;
pub mod keys;
mod relation;

pub use relation::Relation;
