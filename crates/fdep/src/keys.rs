//! Minimal-key discovery three ways.
//!
//! 1. [`minimal_keys_via_agree_sets`] — the Section 5 remark: compute
//!    `Bd⁺(MTh)` (the maximal agree sets) directly from the data, then one
//!    transversal run. Unrestricted data access; the cheapest path.
//! 2. [`minimal_keys_dualize_advance`] — Algorithm 16 under the restricted
//!    `Is-interesting` model: the oracle answers only "is `X` a
//!    non-superkey?". The paper stresses Theorem 21 *"holds even if the
//!    access to the database is restricted to Is-interesting queries"*.
//! 3. [`minimal_keys_levelwise`] — Algorithm 9 under the same model;
//!    minimal keys appear as the negative border.
//!
//! All three must return the same keys — experiment E12 compares their
//! query/time bills.

use dualminer_bitset::AttrSet;
use dualminer_core::dualize_advance::dualize_advance;
use dualminer_core::levelwise::levelwise;
use dualminer_core::oracle::{CountingOracle, InterestOracle};
use dualminer_hypergraph::{transversals_with, Hypergraph, TrAlgorithm};

use crate::agree::maximal_agree_sets;
use crate::Relation;

/// The key-discovery `Is-interesting` oracle: interesting = **not** a
/// superkey. Monotone because projecting onto fewer attributes merges more
/// rows.
#[derive(Clone, Debug)]
pub struct NonSuperkeyOracle<'a> {
    rel: &'a Relation,
}

impl<'a> NonSuperkeyOracle<'a> {
    /// Wraps a relation.
    pub fn new(rel: &'a Relation) -> Self {
        NonSuperkeyOracle { rel }
    }
}

impl InterestOracle for NonSuperkeyOracle<'_> {
    fn universe_size(&self) -> usize {
        self.rel.n_attrs()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        !self.rel.is_superkey(x)
    }
}

/// Output of a key-discovery run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyDiscovery {
    /// The minimal keys, card-lex sorted. Empty iff the relation has two
    /// identical rows (then not even `R` is a key).
    pub minimal_keys: Vec<AttrSet>,
    /// The maximal non-superkeys (= maximal agree sets), card-lex sorted.
    pub maximal_non_superkeys: Vec<AttrSet>,
    /// Distinct `Is-interesting` queries (0 for the direct agree-set path,
    /// which never uses the oracle).
    pub queries: u64,
}

/// Section 5 remark: agree sets + one HTR run. No oracle queries.
pub fn minimal_keys_via_agree_sets(rel: &Relation, algo: TrAlgorithm) -> KeyDiscovery {
    let n = rel.n_attrs();
    let max_ag = maximal_agree_sets(rel);
    let complements = Hypergraph::from_edges(n, max_ag.iter().map(AttrSet::complement).collect())
        .expect("complements stay in universe");
    let keys = transversals_with(&complements, algo);
    KeyDiscovery {
        minimal_keys: keys.edges().to_vec(),
        maximal_non_superkeys: max_ag,
        queries: 0,
    }
}

/// Dualize & Advance on the non-superkey oracle: `MTh` = maximal agree
/// sets, `Bd⁻` = minimal keys.
pub fn minimal_keys_dualize_advance(rel: &Relation, algo: TrAlgorithm) -> KeyDiscovery {
    let mut oracle = CountingOracle::new(NonSuperkeyOracle::new(rel));
    let run = dualize_advance(&mut oracle, algo);
    KeyDiscovery {
        minimal_keys: run.negative_border,
        maximal_non_superkeys: run.maximal,
        queries: oracle.distinct_queries(),
    }
}

/// Levelwise on the non-superkey oracle. Pays for the whole theory (all
/// non-superkeys), so it is only competitive when agree sets are small.
pub fn minimal_keys_levelwise(rel: &Relation) -> KeyDiscovery {
    let mut oracle = CountingOracle::new(NonSuperkeyOracle::new(rel));
    let run = levelwise(&mut oracle);
    KeyDiscovery {
        minimal_keys: run.negative_border,
        maximal_non_superkeys: run.positive_border,
        queries: oracle.distinct_queries(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualminer_bitset::Universe;

    fn toy() -> Relation {
        Relation::new(3, vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 1, 0]])
    }

    #[test]
    fn three_paths_agree_on_toy() {
        let r = toy();
        let direct = minimal_keys_via_agree_sets(&r, TrAlgorithm::Berge);
        let da = minimal_keys_dualize_advance(&r, TrAlgorithm::Berge);
        let lw = minimal_keys_levelwise(&r);
        assert_eq!(direct.minimal_keys, da.minimal_keys);
        assert_eq!(direct.minimal_keys, lw.minimal_keys);
        assert_eq!(direct.maximal_non_superkeys, da.maximal_non_superkeys);
        assert_eq!(direct.maximal_non_superkeys, lw.maximal_non_superkeys);
        // Toy: agree sets {A},{B},{C}; keys = transversals of {BC},{AC},{AB}
        // = all pairs.
        let u = Universe::letters(3);
        assert_eq!(u.display_family(direct.minimal_keys.iter()), "{AB, AC, BC}");
        // Only the direct path is query-free.
        assert_eq!(direct.queries, 0);
        assert!(da.queries > 0 && lw.queries > 0);
    }

    #[test]
    fn keys_are_minimal_superkeys() {
        let r = toy();
        let keys = minimal_keys_via_agree_sets(&r, TrAlgorithm::Berge).minimal_keys;
        for k in &keys {
            assert!(r.is_superkey(k));
            for sub in dualminer_bitset::ImmediateSubsets::new(k) {
                assert!(!r.is_superkey(&sub), "{k:?} not minimal");
            }
        }
    }

    #[test]
    fn identical_rows_no_keys() {
        let r = Relation::new(2, vec![vec![1, 2], vec![1, 2]]);
        let direct = minimal_keys_via_agree_sets(&r, TrAlgorithm::Berge);
        assert!(direct.minimal_keys.is_empty());
        let da = minimal_keys_dualize_advance(&r, TrAlgorithm::Berge);
        assert!(da.minimal_keys.is_empty());
        assert_eq!(da.maximal_non_superkeys, vec![AttrSet::full(2)]);
    }

    #[test]
    fn single_row_empty_key() {
        let r = Relation::new(3, vec![vec![1, 2, 3]]);
        // ∅ is a superkey: the theory is empty, the only "key" is ∅.
        let da = minimal_keys_dualize_advance(&r, TrAlgorithm::Berge);
        assert_eq!(da.minimal_keys, vec![AttrSet::empty(3)]);
        assert!(da.maximal_non_superkeys.is_empty());
        let direct = minimal_keys_via_agree_sets(&r, TrAlgorithm::Berge);
        assert_eq!(direct.minimal_keys, vec![AttrSet::empty(3)]);
    }

    #[test]
    fn armstrong_keys_are_planted_transversals() {
        let plants = vec![
            AttrSet::from_indices(5, [0, 1, 2]),
            AttrSet::from_indices(5, [2, 3]),
            AttrSet::from_indices(5, [1, 4]),
        ];
        let r = Relation::armstrong(5, &plants);
        let direct = minimal_keys_via_agree_sets(&r, TrAlgorithm::Berge);
        let mut expected_maxth = plants.clone();
        expected_maxth.sort_by(|a, b| a.cmp_card_lex(b));
        assert_eq!(direct.maximal_non_superkeys, expected_maxth);
        let expected = dualminer_hypergraph::berge::transversals(
            &Hypergraph::from_edges(5, plants.iter().map(AttrSet::complement).collect()).unwrap(),
        );
        assert_eq!(direct.minimal_keys, expected.edges().to_vec());
        // Restricted-access algorithms agree.
        let da = minimal_keys_dualize_advance(&r, TrAlgorithm::FkJointGeneration);
        assert_eq!(da.minimal_keys, direct.minimal_keys);
    }
}

/// The inverse translation of Section 3's Armstrong-relation remark
/// (Mannila–Räihä, refs \[16, 18\]): construct a relation whose **minimal
/// keys are exactly** the given antichain.
///
/// Derivation: minimal keys `K = Tr({R∖ag : ag maximal agree set})`, so by
/// the transversal involution the maximal agree sets are the complements
/// of `Tr(K)` — one dualization, then the Armstrong construction. This is
/// the direction the paper calls "at least as hard as" the HTR problem,
/// and indeed the only non-trivial work is the `Tr` computation.
///
/// # Panics
/// Panics if `keys` is empty or contains ∅ together with other members
/// (∅ a key means every set is one; pass `&[AttrSet::empty(n)]` alone for
/// the single-row relation).
pub fn armstrong_for_keys(n: usize, keys: &[AttrSet], algo: TrAlgorithm) -> Relation {
    assert!(!keys.is_empty(), "need at least one key");
    if keys.len() == 1 && keys[0].is_empty() {
        // ∅ is a key ⟺ at most one row.
        return Relation::new(n, vec![vec![0; n]]);
    }
    assert!(
        keys.iter().all(|k| !k.is_empty()),
        "∅ cannot be a minimal key alongside others"
    );
    let key_graph = Hypergraph::from_edges(n, keys.to_vec()).expect("keys in universe");
    let anti_keys = transversals_with(&key_graph, algo); // Tr(K)
    let max_agree: Vec<AttrSet> = anti_keys.edges().iter().map(AttrSet::complement).collect();
    Relation::armstrong(n, &max_agree)
}

#[cfg(test)]
mod armstrong_tests {
    use super::*;

    #[test]
    fn realizes_requested_keys() {
        let n = 5;
        let keys = vec![
            AttrSet::from_indices(n, [0, 1]),
            AttrSet::from_indices(n, [1, 2]),
            AttrSet::from_indices(n, [3, 4]),
        ];
        // The requested family must be an antichain of minimal keys; it is.
        let rel = armstrong_for_keys(n, &keys, TrAlgorithm::Berge);
        let got = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge).minimal_keys;
        let mut expected = keys.clone();
        expected.sort_by(|a, b| a.cmp_card_lex(b));
        assert_eq!(got, expected);
    }

    #[test]
    fn single_attribute_key() {
        let rel = armstrong_for_keys(3, &[AttrSet::from_indices(3, [1])], TrAlgorithm::Berge);
        let got = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge).minimal_keys;
        assert_eq!(got, vec![AttrSet::from_indices(3, [1])]);
    }

    #[test]
    fn empty_key_single_row() {
        let rel = armstrong_for_keys(3, &[AttrSet::empty(3)], TrAlgorithm::Berge);
        assert_eq!(rel.n_rows(), 1);
        assert!(rel.is_superkey(&AttrSet::empty(3)));
    }

    #[test]
    fn random_antichains_round_trip() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let n = 7;
            let keys = dualminer_hypergraph::maximize_family(
                (0..4)
                    .map(|_| {
                        use rand::Rng;
                        let k = rng.gen_range(1..=3);
                        AttrSet::from_indices(n, (0..k).map(|_| rng.gen_range(0..n)))
                    })
                    .collect(),
            );
            // maximize_family keeps an antichain; these are legitimate
            // candidate minimal-key families.
            let rel = armstrong_for_keys(n, &keys, TrAlgorithm::Berge);
            let got = minimal_keys_via_agree_sets(&rel, TrAlgorithm::Berge).minimal_keys;
            let mut expected = keys.clone();
            expected.sort_by(|a, b| a.cmp_card_lex(b));
            assert_eq!(got, expected, "keys={keys:?}");
        }
    }
}
