//! Functional dependencies with a fixed right-hand side.
//!
//! For a target attribute `A`, the language is `P(R \ {A})` and `X` is
//! **interesting iff `X → A` does not hold** in the instance — monotone,
//! since shrinking `X` merges more rows. Then:
//!
//! * `MTh` = the maximal LHSs not determining `A`: the maximal sets among
//!   `ag(t, u) \ {A}` over row pairs that *disagree* on `A`;
//! * `Bd⁻(MTh)` = the minimal LHSs with `X → A`: the discovered minimal
//!   FDs.
//!
//! Because the language lives on `R \ {A}`, the representation as sets
//! (Definition 6) is *not* the identity: [`FdLhsRepresentation`] maps the
//! reduced `n−1`-attribute lattice to real attribute sets, exercising the
//! `f`/`f⁻¹` machinery of Theorem 7 end to end.

use dualminer_bitset::AttrSet;
use dualminer_core::dualize_advance::dualize_advance;
use dualminer_core::lang::SetRepresentation;
use dualminer_core::oracle::{CountingOracle, InterestOracle};
use dualminer_hypergraph::{maximize_family, transversals_with, Hypergraph, TrAlgorithm};

use crate::agree::agree_set;
use crate::Relation;

/// Definition 6 for fixed-RHS FDs: a bijection between `P(R \ {A})`
/// (reduced universe of size `n − 1`) and LHS attribute sets over `R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FdLhsRepresentation {
    n: usize,
    target: usize,
}

impl FdLhsRepresentation {
    /// Representation for FDs `X → target` over `n` attributes.
    ///
    /// # Panics
    /// Panics if `target >= n`.
    pub fn new(n: usize, target: usize) -> Self {
        assert!(target < n, "target attribute outside universe");
        FdLhsRepresentation { n, target }
    }

    /// Reduced index of a real attribute (`None` for the target).
    pub fn to_reduced(&self, attr: usize) -> Option<usize> {
        match attr.cmp(&self.target) {
            std::cmp::Ordering::Less => Some(attr),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(attr - 1),
        }
    }

    /// Real attribute of a reduced index.
    pub fn to_full(&self, reduced: usize) -> usize {
        if reduced < self.target {
            reduced
        } else {
            reduced + 1
        }
    }
}

impl SetRepresentation for FdLhsRepresentation {
    /// An LHS as a set over the *full* attribute universe (never contains
    /// the target).
    type Sentence = AttrSet;

    fn universe_size(&self) -> usize {
        self.n - 1
    }

    fn encode(&self, sentence: &AttrSet) -> AttrSet {
        assert_eq!(sentence.universe_size(), self.n);
        assert!(
            !sentence.contains(self.target),
            "LHS must not contain the target"
        );
        AttrSet::from_indices(
            self.n - 1,
            sentence
                .iter()
                .map(|a| self.to_reduced(a).expect("not target")),
        )
    }

    fn decode(&self, set: &AttrSet) -> AttrSet {
        assert_eq!(set.universe_size(), self.n - 1);
        AttrSet::from_indices(self.n, set.iter().map(|r| self.to_full(r)))
    }
}

/// The `Is-interesting` oracle over the reduced universe: interesting iff
/// the decoded LHS does **not** determine the target.
#[derive(Clone, Debug)]
pub struct NonDeterminingOracle<'a> {
    rel: &'a Relation,
    repr: FdLhsRepresentation,
}

impl<'a> NonDeterminingOracle<'a> {
    /// Oracle for FDs `X → target` on `rel`.
    pub fn new(rel: &'a Relation, target: usize) -> Self {
        NonDeterminingOracle {
            rel,
            repr: FdLhsRepresentation::new(rel.n_attrs(), target),
        }
    }
}

impl InterestOracle for NonDeterminingOracle<'_> {
    fn universe_size(&self) -> usize {
        self.repr.universe_size()
    }

    fn is_interesting(&mut self, x: &AttrSet) -> bool {
        !self.rel.fd_holds(&self.repr.decode(x), self.repr.target)
    }
}

/// Output of fixed-RHS FD discovery. All sets are over the **full**
/// attribute universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdDiscovery {
    /// The target attribute `A`.
    pub target: usize,
    /// Minimal LHSs with `X → A`, card-lex sorted. Contains `∅` iff the
    /// `A`-column is constant; empty iff two rows agree everywhere but on
    /// `A`… (then no LHS works).
    pub minimal_lhs: Vec<AttrSet>,
    /// Maximal LHSs with `X ↛ A`.
    pub maximal_non_determining: Vec<AttrSet>,
    /// Distinct oracle queries (0 for the direct path).
    pub queries: u64,
}

/// Direct path: agree sets of `A`-disagreeing pairs + one HTR run
/// (the fixed-RHS analogue of the Section 5 key remark).
pub fn minimal_fd_lhs_via_agree_sets(
    rel: &Relation,
    target: usize,
    algo: TrAlgorithm,
) -> FdDiscovery {
    let repr = FdLhsRepresentation::new(rel.n_attrs(), target);
    // Maximal non-determining sets: maximal ag(t,u) \ {A} over pairs with
    // t[A] ≠ u[A].
    let mut witnesses = Vec::new();
    for t in 0..rel.n_rows() {
        for u in t + 1..rel.n_rows() {
            if rel.rows()[t][target] != rel.rows()[u][target] {
                let mut ag = agree_set(rel, t, u);
                ag.remove(target);
                witnesses.push(ag);
            }
        }
    }
    let mut maximal = maximize_family(witnesses);
    maximal.sort_by(|a, b| a.cmp_card_lex(b));

    // Transversals in the reduced universe, decoded back (Theorem 7's f⁻¹).
    let reduced_complements = Hypergraph::from_edges(
        rel.n_attrs() - 1,
        maximal
            .iter()
            .map(|m| repr.encode(m).complement())
            .collect(),
    )
    .expect("reduced sets in reduced universe");
    let tr = transversals_with(&reduced_complements, algo);
    let minimal_lhs: Vec<AttrSet> = tr.edges().iter().map(|t| repr.decode(t)).collect();

    FdDiscovery {
        target,
        minimal_lhs,
        maximal_non_determining: maximal,
        queries: 0,
    }
}

/// Restricted-access path: Dualize & Advance through the representation.
pub fn minimal_fd_lhs_dualize_advance(
    rel: &Relation,
    target: usize,
    algo: TrAlgorithm,
) -> FdDiscovery {
    let repr = FdLhsRepresentation::new(rel.n_attrs(), target);
    let mut oracle = CountingOracle::new(NonDeterminingOracle::new(rel, target));
    let run = dualize_advance(&mut oracle, algo);
    FdDiscovery {
        target,
        minimal_lhs: run.negative_border.iter().map(|s| repr.decode(s)).collect(),
        maximal_non_determining: run.maximal.iter().map(|s| repr.decode(s)).collect(),
        queries: oracle.distinct_queries(),
    }
}

/// Discovers minimal FDs for **every** right-hand side: the full
/// dependency inference task of refs \[17, 18\].
pub fn all_minimal_fds(rel: &Relation, algo: TrAlgorithm) -> Vec<FdDiscovery> {
    (0..rel.n_attrs())
        .map(|a| minimal_fd_lhs_via_agree_sets(rel, a, algo))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dualminer_bitset::Universe;

    fn toy() -> Relation {
        Relation::new(3, vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 1, 0]])
    }

    #[test]
    fn representation_round_trip() {
        let repr = FdLhsRepresentation::new(5, 2);
        let lhs = AttrSet::from_indices(5, [0, 3, 4]);
        let reduced = repr.encode(&lhs);
        assert_eq!(reduced.to_vec(), vec![0, 2, 3]);
        assert_eq!(repr.decode(&reduced), lhs);
        assert_eq!(repr.to_reduced(2), None);
        assert_eq!(repr.to_full(2), 3);
    }

    #[test]
    #[should_panic(expected = "must not contain the target")]
    fn representation_rejects_target_in_lhs() {
        let repr = FdLhsRepresentation::new(3, 1);
        repr.encode(&AttrSet::from_indices(3, [1]));
    }

    #[test]
    fn both_paths_agree_on_toy() {
        let r = toy();
        for target in 0..3 {
            let direct = minimal_fd_lhs_via_agree_sets(&r, target, TrAlgorithm::Berge);
            let da = minimal_fd_lhs_dualize_advance(&r, target, TrAlgorithm::Berge);
            assert_eq!(direct.minimal_lhs, da.minimal_lhs, "target={target}");
            assert_eq!(
                direct.maximal_non_determining, da.maximal_non_determining,
                "target={target}"
            );
        }
    }

    #[test]
    fn discovered_fds_hold_and_are_minimal() {
        let r = toy();
        for target in 0..3 {
            let d = minimal_fd_lhs_via_agree_sets(&r, target, TrAlgorithm::Berge);
            for lhs in &d.minimal_lhs {
                assert!(r.fd_holds(lhs, target), "X={lhs:?} → {target}");
                assert!(!lhs.contains(target));
                for sub in dualminer_bitset::ImmediateSubsets::new(lhs) {
                    assert!(!r.fd_holds(&sub, target), "{lhs:?} not minimal");
                }
            }
        }
    }

    #[test]
    fn toy_fd_values() {
        // Toy relation: rows 000, 011, 110.
        let r = toy();
        let u = Universe::letters(3);
        // target C: BC? — minimal LHS determining C: AB (key) and … A?
        // A→C: rows 0,1 agree on A, C differs → no. B→C: rows 1,2 agree on
        // B, C differs → no. AB→C holds (key).
        let d = minimal_fd_lhs_via_agree_sets(&r, 2, TrAlgorithm::Berge);
        assert_eq!(u.display_family(d.minimal_lhs.iter()), "{AB}");
    }

    #[test]
    fn constant_column_determined_by_empty_set() {
        let r = Relation::new(2, vec![vec![0, 7], vec![1, 7]]);
        let d = minimal_fd_lhs_via_agree_sets(&r, 1, TrAlgorithm::Berge);
        assert_eq!(d.minimal_lhs, vec![AttrSet::from_indices(2, [])]);
        let da = minimal_fd_lhs_dualize_advance(&r, 1, TrAlgorithm::Berge);
        assert_eq!(da.minimal_lhs, d.minimal_lhs);
    }

    #[test]
    fn undeterminable_target_has_no_fds() {
        // Two rows equal except on B: nothing (without B) determines B.
        let r = Relation::new(2, vec![vec![0, 0], vec![0, 1]]);
        let d = minimal_fd_lhs_via_agree_sets(&r, 1, TrAlgorithm::Berge);
        assert!(d.minimal_lhs.is_empty());
        let da = minimal_fd_lhs_dualize_advance(&r, 1, TrAlgorithm::Berge);
        assert!(da.minimal_lhs.is_empty());
    }

    #[test]
    fn all_fds_shape() {
        let r = toy();
        let all = all_minimal_fds(&r, TrAlgorithm::Berge);
        assert_eq!(all.len(), 3);
        assert!(all.iter().enumerate().all(|(i, d)| d.target == i));
    }
}
