//! # dualminer-parallel
//!
//! Scoped-thread work splitting for the workspace's three hot paths:
//! levelwise support counting, minimal-transversal branch exploration, and
//! the Fredman–Khachiyan duality-check recursion.
//!
//! Design constraints (DESIGN.md §2: std scoped threads suffice — no
//! external dependencies):
//!
//! * **Determinism.** Every combinator returns results in the *input
//!   order* of the work items, regardless of which worker ran which item
//!   and in which interleaving. Callers that merge per-item outputs by
//!   simple concatenation therefore produce output bit-identical to the
//!   sequential loop.
//! * **Zero-cost opt-out.** `threads == 1` (or fewer than two work items)
//!   runs the plain sequential loop on the calling thread — no spawns, no
//!   allocation beyond the output vector — so sequential entry points can
//!   delegate to the parallel ones without a performance tax.
//! * **`threads == 0` means auto:** [`effective_threads`] resolves 0 to
//!   [`std::thread::available_parallelism`].
//!
//! Scheduling is dynamic: workers pull item indices from a shared atomic
//! cursor, so uneven item costs (ragged transversal subtrees, skewed
//! prefix groups) balance without any cost model. Results carry their item
//! index and are re-assembled in order afterwards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// A cooperative early-exit signal shared by the workers of one parallel
/// batch: when one worker hits a terminal condition (e.g. a permanent
/// oracle fault in the fault-tolerant levelwise driver), it raises the
/// flag and siblings skip their remaining items instead of burning work
/// — and, under injected latency, wall-clock — on a doomed level.
///
/// This is purely an optimization signal: results for items evaluated
/// before the raise are still returned in item order, so callers that
/// resolve conflicts in *sequential* order (first error wins) stay
/// deterministic regardless of which worker raised first.
#[derive(Debug, Default)]
pub struct AbortFlag {
    raised: AtomicBool,
}

impl AbortFlag {
    /// A lowered flag.
    pub fn new() -> AbortFlag {
        AbortFlag::default()
    }

    /// Signals siblings to stop picking up new items.
    #[inline]
    pub fn raise(&self) {
        self.raised.store(true, Ordering::Relaxed);
    }

    /// Whether some worker has raised the flag.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.raised.load(Ordering::Relaxed)
    }
}

/// Resolves a `threads` knob: `0` becomes the machine's available
/// parallelism (at least 1), any other value is used as given.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results **in item order**.
///
/// `f` receives `(item_index, &item)`. Work is distributed dynamically
/// (atomic cursor); determinism comes from re-assembling results by item
/// index, not from the schedule. With `threads <= 1` or fewer than two
/// items this is a plain sequential `map` on the calling thread.
pub fn par_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    // Re-assemble in item order. Each worker's bucket is already sorted by
    // index (the cursor is monotone), so a k-way merge by sorting the
    // concatenation is O(m log m) on small constants and obviously correct.
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for bucket in &mut buckets {
        indexed.append(bucket);
    }
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] over contiguous chunks: splits `items` into at most
/// `threads * oversubscribe` contiguous chunks, maps `f` over each chunk
/// on worker threads, and returns the per-chunk results **in chunk
/// order** (so `Vec::concat` of per-chunk output vectors reproduces the
/// sequential iteration order exactly).
///
/// Use this when per-item work is small — chunking amortizes the
/// scheduling overhead — or when the caller's merge step wants
/// slice-granular results (e.g. one output buffer per prefix group).
pub fn par_chunks<T: Sync, R: Send>(
    threads: usize,
    oversubscribe: usize,
    items: &[T],
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }
    let n_chunks = (threads * oversubscribe.max(1)).min(items.len());
    let chunk_len = items.len().div_ceil(n_chunks);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    par_map(threads, &chunks, |_, chunk| f(chunk))
}

/// [`par_chunks`] over parallel slices: splits `items` and `outs` (which
/// must have equal lengths) into the *same* contiguous chunk boundaries
/// and calls `f(offset, item_chunk, out_chunk)` on worker threads —
/// `offset` is the chunk's starting index in `items`, so `f` can recover
/// each element's global position — and each worker writes its results
/// straight into its exclusive slice of the output buffer: no per-chunk
/// allocation, no merge step. The segment-major support counter uses this
/// to accumulate per-candidate partial counts in place, one pass per row
/// segment.
///
/// Chunk *assignment* is static (worker `w` takes chunks `w`, `w +
/// threads`, …) because handing each worker ownership of its `&mut`
/// output chunks requires deciding the partition up front; `oversubscribe`
/// still gives late workers smaller strides to balance skew. Each output
/// element is written by exactly one worker, so the result is
/// deterministic — identical to the sequential loop — for every thread
/// count and schedule.
///
/// # Panics
/// Panics if `items.len() != outs.len()`.
pub fn par_chunks_zip_mut<T: Sync, U: Send>(
    threads: usize,
    oversubscribe: usize,
    items: &[T],
    outs: &mut [U],
    f: impl Fn(usize, &[T], &mut [U]) + Sync,
) {
    assert_eq!(
        items.len(),
        outs.len(),
        "par_chunks_zip_mut: items and outs must be parallel slices"
    );
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        if !items.is_empty() {
            f(0, items, outs);
        }
        return;
    }
    let n_chunks = (threads * oversubscribe.max(1)).min(items.len());
    let chunk_len = items.len().div_ceil(n_chunks);
    // Striped static assignment: chunk c goes to worker c % threads. Each
    // worker owns (moves) its list of (offset, &[T], &mut [U]) triples.
    type Chunk<'a, T, U> = (usize, &'a [T], &'a mut [U]);
    let mut per_worker: Vec<Vec<Chunk<'_, T, U>>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, (chunk, out)) in items
        .chunks(chunk_len)
        .zip(outs.chunks_mut(chunk_len))
        .enumerate()
    {
        per_worker[c % threads].push((c * chunk_len, chunk, out));
    }
    let f = &f;
    thread::scope(|scope| {
        for bucket in per_worker {
            scope.spawn(move || {
                for (offset, chunk, out) in bucket {
                    f(offset, chunk, out);
                }
            });
        }
    });
}

/// Runs two closures, on two scoped threads when `parallel` is true, and
/// returns both results. The FK duality check uses this for its two
/// recursive sub-problems; `parallel == false` degenerates to plain
/// sequential calls on the current thread.
pub fn join<RA: Send, RB: Send>(
    parallel: bool,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if !parallel {
        return (a(), b());
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("parallel worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..997).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_runs_on_multiple_threads() {
        let items: Vec<usize> = (0..64).collect();
        let seen = Mutex::new(HashSet::new());
        par_map(4, &items, |_, _| {
            // Slow the items down a little so the scheduler actually
            // spreads them; thread-id collection proves multi-threading
            // (on a single-core box all four workers still exist).
            std::thread::sleep(std::time::Duration::from_micros(100));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_concat_matches_sequential() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 5] {
            let chunked = par_chunks(threads, 4, &items, |chunk| {
                chunk.iter().map(|x| x + 1).collect::<Vec<_>>()
            });
            let flat: Vec<u32> = chunked.concat();
            assert_eq!(flat, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_empty() {
        let empty: Vec<u32> = vec![];
        assert!(par_chunks(4, 4, &empty, |c| c.len()).is_empty());
    }

    #[test]
    fn par_chunks_zip_mut_matches_sequential() {
        let items: Vec<u32> = (0..997).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            for oversubscribe in [1, 4] {
                let mut outs = vec![0u64; items.len()];
                par_chunks_zip_mut(
                    threads,
                    oversubscribe,
                    &items,
                    &mut outs,
                    |offset, chunk, out| {
                        for (k, (x, o)) in chunk.iter().zip(out.iter_mut()).enumerate() {
                            // The offset recovers the global index.
                            assert_eq!(offset + k, *x as usize);
                            *o = *x as u64 * 3 + 1;
                        }
                    },
                );
                assert_eq!(outs, expected, "threads={threads} over={oversubscribe}");
            }
        }
    }

    #[test]
    fn par_chunks_zip_mut_accumulates_in_place() {
        // Two passes add into the same buffer — the segment-major pattern.
        let items: Vec<u32> = (0..100).collect();
        let mut outs = vec![0u64; items.len()];
        for pass in 0..2 {
            par_chunks_zip_mut(3, 4, &items, &mut outs, |_, chunk, out| {
                for (x, o) in chunk.iter().zip(out.iter_mut()) {
                    *o += (*x + pass) as u64;
                }
            });
        }
        let expected: Vec<u64> = items.iter().map(|&x| (2 * x + 1) as u64).collect();
        assert_eq!(outs, expected);
    }

    #[test]
    fn par_chunks_zip_mut_empty_and_singleton() {
        let mut outs: Vec<u64> = vec![];
        par_chunks_zip_mut(4, 4, &[] as &[u32], &mut outs, |_, _, _| {
            panic!("no chunks")
        });
        let mut one = vec![0u64];
        par_chunks_zip_mut(4, 4, &[7u32], &mut one, |off, c, o| {
            o[0] = c[0] as u64 + off as u64 + 1
        });
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "parallel slices")]
    fn par_chunks_zip_mut_length_mismatch_panics() {
        let mut outs = vec![0u64; 2];
        par_chunks_zip_mut(2, 1, &[1u32, 2, 3], &mut outs, |_, _, _| {});
    }

    #[test]
    fn join_returns_both() {
        for parallel in [false, true] {
            let (a, b) = join(parallel, || 1 + 1, || "x".to_string());
            assert_eq!(a, 2);
            assert_eq!(b, "x");
        }
    }

    #[test]
    fn join_borrows_environment() {
        let data = [1, 2, 3];
        let (s, l) = join(true, || data.iter().sum::<i32>(), || data.len());
        assert_eq!((s, l), (6, 3));
    }

    #[test]
    fn abort_flag_is_sticky_and_shareable() {
        let flag = AbortFlag::new();
        assert!(!flag.is_set());
        let items: Vec<usize> = (0..64).collect();
        let seen = par_map(4, &items, |_, &i| {
            if i == 7 {
                flag.raise();
            }
            flag.is_set()
        });
        assert_eq!(seen.len(), 64);
        assert!(flag.is_set());
        flag.raise(); // idempotent
        assert!(flag.is_set());
    }
}
