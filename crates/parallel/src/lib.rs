//! # dualminer-parallel
//!
//! Deterministic work-stealing scheduler for the workspace's hot paths:
//! levelwise support counting, minimal-transversal branch exploration, and
//! the Fredman–Khachiyan duality-check recursion.
//!
//! Design constraints (DESIGN.md §6/§13: std threads suffice — no external
//! dependencies, `forbid(unsafe_code)`):
//!
//! * **Determinism.** Every combinator returns results in the *input
//!   order* of the work items, regardless of which worker ran which item,
//!   which tasks were stolen, and how ranges were split. Callers that
//!   merge per-item outputs by simple concatenation therefore produce
//!   output bit-identical to the sequential loop at every thread count
//!   and every grain size.
//! * **Zero-cost opt-out.** `threads == 1` (or fewer than two work items)
//!   runs the plain sequential loop on the calling thread — no spawns, no
//!   deques — so sequential entry points can delegate to the parallel
//!   ones without a performance tax.
//! * **`threads == 0` means auto:** [`effective_threads`] resolves 0 to
//!   [`std::thread::available_parallelism`].
//!
//! Scheduling is **work stealing** over per-worker deques of contiguous
//! index ranges (safe Rust: `Mutex<VecDeque>` per worker plus one
//! `Condvar` parker — no Chase-Lev unsafe). Each worker is seeded with one
//! contiguous slice of the items; owners pop from the *back* of their own
//! deque and split oversized ranges in half down to a tunable grain
//! ([`set_default_grain`]), pushing the far halves back where thieves can
//! take them; idle workers steal from the *front* of a victim's deque —
//! the oldest and therefore largest range. Skewed workloads (one giant
//! transversal subtree among many trivial ones) thus rebalance without a
//! cost model, while results re-assemble by item index into exactly the
//! sequential order.
//!
//! The scheduler keeps process-global task/steal/split counters
//! ([`scheduler_stats`]) which the CLI surfaces in its `--stats json`
//! artifact and the bench harness stamps into its JSON lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A cooperative early-exit signal shared by the workers of one parallel
/// batch: when one worker hits a terminal condition (e.g. a permanent
/// oracle fault in the fault-tolerant levelwise driver), it raises the
/// flag and siblings skip their remaining items instead of burning work
/// — and, under injected latency, wall-clock — on a doomed level.
///
/// This is purely an optimization signal: results for items evaluated
/// before the raise are still returned in item order, so callers that
/// resolve conflicts in *sequential* order (first error wins) stay
/// deterministic regardless of which worker raised first.
#[derive(Debug, Default)]
pub struct AbortFlag {
    raised: AtomicBool,
}

impl AbortFlag {
    /// A lowered flag.
    pub fn new() -> AbortFlag {
        AbortFlag::default()
    }

    /// Signals siblings to stop picking up new items.
    #[inline]
    pub fn raise(&self) {
        self.raised.store(true, Ordering::Relaxed);
    }

    /// Whether some worker has raised the flag.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.raised.load(Ordering::Relaxed)
    }
}

/// Resolves a `threads` knob: `0` becomes the machine's available
/// parallelism (at least 1), any other value is used as given.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

// ---------------------------------------------------------------------------
// Grain knob
// ---------------------------------------------------------------------------

/// Process-global default task grain: `0` = auto (`len / (threads * 8)`,
/// at least 1). See [`set_default_grain`].
static DEFAULT_GRAIN: AtomicUsize = AtomicUsize::new(0);

/// Sets the scheduler's task grain: ranges are split until at most this
/// many items remain per task. `0` restores the automatic heuristic
/// (`len / (threads * 8)`, clamped to ≥ 1), which keeps roughly eight
/// stealable tasks per worker. The grain is a pure scheduling knob —
/// output is bit-identical for every value (the CLI exposes it as
/// `--grain`).
pub fn set_default_grain(grain: usize) {
    DEFAULT_GRAIN.store(grain, Ordering::Relaxed);
}

/// The current default grain (`0` = auto).
pub fn default_grain() -> usize {
    DEFAULT_GRAIN.load(Ordering::Relaxed)
}

fn resolve_grain(len: usize, threads: usize) -> usize {
    match DEFAULT_GRAIN.load(Ordering::Relaxed) {
        0 => (len / (threads * 8).max(1)).max(1),
        g => g,
    }
}

// ---------------------------------------------------------------------------
// Scheduler statistics
// ---------------------------------------------------------------------------

static TOTAL_TASKS: AtomicU64 = AtomicU64::new(0);
static TOTAL_STEALS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPLITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_JOINS: AtomicU64 = AtomicU64::new(0);
/// Per-worker-slot `(tasks, steals)` accumulated across every scheduled
/// batch since the last [`reset_scheduler_stats`].
static PER_WORKER: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());

/// A snapshot of the process-global scheduler counters: total leaf tasks
/// executed, successful steals, range splits, fork-join pairs, and the
/// per-worker-slot `(tasks, steals)` breakdown. Counters are cumulative
/// since process start or the last [`reset_scheduler_stats`]; they are
/// observability only and never influence scheduling decisions or output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Leaf tasks executed (after splitting down to the grain).
    pub tasks: u64,
    /// Successful steals from a sibling's deque.
    pub steals: u64,
    /// Range splits performed while narrowing to the grain.
    pub splits: u64,
    /// Two-way fork-join invocations ([`join`] with `parallel == true`).
    pub joins: u64,
    /// `(tasks, steals)` per worker slot (slot 0 is the seeding worker).
    pub per_worker: Vec<(u64, u64)>,
}

/// Snapshots the global scheduler counters.
pub fn scheduler_stats() -> SchedStats {
    SchedStats {
        tasks: TOTAL_TASKS.load(Ordering::Relaxed),
        steals: TOTAL_STEALS.load(Ordering::Relaxed),
        splits: TOTAL_SPLITS.load(Ordering::Relaxed),
        joins: TOTAL_JOINS.load(Ordering::Relaxed),
        per_worker: PER_WORKER.lock().expect("scheduler stats poisoned").clone(),
    }
}

/// Zeroes the global scheduler counters (benchmarks isolate runs with
/// this).
pub fn reset_scheduler_stats() {
    TOTAL_TASKS.store(0, Ordering::Relaxed);
    TOTAL_STEALS.store(0, Ordering::Relaxed);
    TOTAL_SPLITS.store(0, Ordering::Relaxed);
    TOTAL_JOINS.store(0, Ordering::Relaxed);
    PER_WORKER.lock().expect("scheduler stats poisoned").clear();
}

fn record_worker(slot: usize, tasks: u64, steals: u64, splits: u64) {
    TOTAL_TASKS.fetch_add(tasks, Ordering::Relaxed);
    TOTAL_STEALS.fetch_add(steals, Ordering::Relaxed);
    TOTAL_SPLITS.fetch_add(splits, Ordering::Relaxed);
    let mut per = PER_WORKER.lock().expect("scheduler stats poisoned");
    if per.len() <= slot {
        per.resize(slot + 1, (0, 0));
    }
    per[slot].0 += tasks;
    per[slot].1 += steals;
}

// ---------------------------------------------------------------------------
// The work-stealing core
// ---------------------------------------------------------------------------

/// Shared state of one scheduled batch: per-worker range deques, the
/// count of not-yet-processed items (the termination condition), and a
/// parker so idle thieves block instead of spinning.
struct WsCore {
    deques: Vec<Mutex<VecDeque<(usize, usize)>>>,
    remaining: AtomicUsize,
    parker_lock: Mutex<()>,
    parker: Condvar,
}

impl WsCore {
    /// Seeds `len` items across `threads` deques as balanced contiguous
    /// ranges — range order equals item order, so worker `w`'s seed is
    /// the `w`-th slice of the sequential iteration.
    fn seed(len: usize, threads: usize) -> WsCore {
        let base = len / threads;
        let rem = len % threads;
        let deques = (0..threads)
            .map(|w| {
                let start = w * base + w.min(rem);
                let stop = start + base + usize::from(w < rem);
                let mut q = VecDeque::new();
                if start < stop {
                    q.push_back((start, stop));
                }
                Mutex::new(q)
            })
            .collect();
        WsCore {
            deques,
            remaining: AtomicUsize::new(len),
            parker_lock: Mutex::new(()),
            parker: Condvar::new(),
        }
    }

    fn notify(&self) {
        // Touch the parker lock so a worker between its `remaining` check
        // and its wait cannot miss the wake-up.
        drop(self.parker_lock.lock().expect("parker poisoned"));
        self.parker.notify_all();
    }

    /// One worker's scheduling loop: pop own back → steal victim front →
    /// park. Popped ranges are split in half down to `grain`, far halves
    /// pushed back for thieves; each leaf range is handed to `process`
    /// exactly once. `process(worker, start, stop)` must handle items
    /// `start..stop`.
    fn run_worker(&self, w: usize, grain: usize, process: &(impl Fn(usize, usize, usize) + Sync)) {
        let threads = self.deques.len();
        let mut tasks = 0u64;
        let mut steals = 0u64;
        let mut splits = 0u64;
        loop {
            // Own deque first (LIFO: the most recently split-off half is
            // adjacent to what this worker just processed).
            let mut task = self.deques[w]
                .lock()
                .expect("worker deque poisoned")
                .pop_back();
            if task.is_none() {
                // Steal the oldest (largest) range from the first victim
                // that has one; a contended victim lock is skipped, not
                // waited on.
                for k in 1..threads {
                    let v = (w + k) % threads;
                    if let Ok(mut q) = self.deques[v].try_lock() {
                        if let Some(r) = q.pop_front() {
                            task = Some(r);
                            steals += 1;
                            break;
                        }
                    }
                }
            }
            match task {
                Some((start, mut stop)) => {
                    // Split in half down to the grain, keeping the near
                    // half and publishing the far half for thieves.
                    while stop - start > grain {
                        let mid = start + (stop - start).div_ceil(2);
                        self.deques[w]
                            .lock()
                            .expect("worker deque poisoned")
                            .push_back((mid, stop));
                        splits += 1;
                        stop = mid;
                        self.notify();
                    }
                    process(w, start, stop);
                    tasks += 1;
                    if self.remaining.fetch_sub(stop - start, Ordering::SeqCst) == stop - start {
                        // Last items done: wake every parked worker so the
                        // batch can retire.
                        self.notify();
                    }
                }
                None => {
                    if self.remaining.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    // Nothing stealable right now but work is still in
                    // flight (a sibling holds an unsplit range): park
                    // until a split publishes more, with a timeout as a
                    // liveness backstop.
                    let guard = self.parker_lock.lock().expect("parker poisoned");
                    if self.remaining.load(Ordering::SeqCst) != 0 {
                        let _ = self
                            .parker
                            .wait_timeout(guard, Duration::from_micros(200))
                            .expect("parker poisoned");
                    }
                }
            }
        }
        record_worker(w, tasks, steals, splits);
    }
}

/// Runs `process` over the index space `0..len` on `threads` workers via
/// the work-stealing core. `process(worker, start, stop)` receives each
/// leaf range exactly once; ranges partition `0..len`.
fn ws_run(threads: usize, len: usize, grain: usize, process: impl Fn(usize, usize, usize) + Sync) {
    debug_assert!(threads >= 2 && len >= 2);
    let core = WsCore::seed(len, threads);
    let core = &core;
    let process = &process;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || core.run_worker(w, grain, process)))
            .collect();
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
    debug_assert_eq!(core.remaining.load(Ordering::SeqCst), 0);
}

/// Maps `f` over `items` on up to `threads` work-stealing workers,
/// returning the results **in item order**.
///
/// `f` receives `(item_index, &item)`. Work is distributed by the
/// stealing scheduler (contiguous seed ranges, split-on-demand down to
/// the [grain](set_default_grain)); determinism comes from re-assembling
/// results by item index, not from the schedule. With `threads <= 1` or
/// fewer than two items this is a plain sequential `map` on the calling
/// thread.
pub fn par_map<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        if !items.is_empty() {
            TOTAL_TASKS.fetch_add(1, Ordering::Relaxed);
        }
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let grain = resolve_grain(items.len(), threads);
    let buckets: Vec<Mutex<Vec<(usize, R)>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    ws_run(threads, items.len(), grain, |w, start, stop| {
        // Evaluate the leaf range outside the bucket lock (only this
        // worker ever locks bucket `w`, but keep the critical section to
        // the push anyway).
        let mut out: Vec<(usize, R)> = Vec::with_capacity(stop - start);
        for (i, item) in items[start..stop].iter().enumerate() {
            out.push((start + i, f(start + i, item)));
        }
        buckets[w]
            .lock()
            .expect("result bucket poisoned")
            .append(&mut out);
    });
    // Ordered merge: leaf ranges partition the index space, so sorting
    // the concatenation by item index reproduces the sequential order
    // exactly — the determinism contract every caller builds on.
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for bucket in buckets {
        indexed.append(&mut bucket.into_inner().expect("result bucket poisoned"));
    }
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Decides the chunk geometry shared by [`par_chunks`] and
/// [`par_chunks_zip_mut`]: at most `threads * max(oversubscribe, 1)`
/// contiguous chunks of equal ceiling length. Note the *actual* chunk
/// count `ceil(len / chunk_len)` can undershoot the requested `n_chunks`
/// (e.g. `len = 6`, `n_chunks = 4` → `chunk_len = 2` → 3 chunks); every
/// chunk except possibly the last has exactly `chunk_len` items and no
/// chunk is ever empty, so `chunk_index * chunk_len` is always the
/// chunk's global offset. `oversubscribe = 0` is treated as 1.
fn chunk_len(threads: usize, oversubscribe: usize, len: usize) -> usize {
    let n_chunks = (threads * oversubscribe.max(1)).min(len);
    len.div_ceil(n_chunks)
}

/// [`par_map`] over contiguous chunks: splits `items` into at most
/// `threads * oversubscribe` contiguous chunks, maps `f` over each chunk
/// on the work-stealing workers, and returns the per-chunk results **in
/// chunk order** (so `Vec::concat` of per-chunk output vectors reproduces
/// the sequential iteration order exactly).
///
/// Use this when per-item work is small — chunking amortizes the
/// scheduling overhead — or when the caller's merge step wants
/// slice-granular results (e.g. one output buffer per prefix group).
pub fn par_chunks<T: Sync, R: Send>(
    threads: usize,
    oversubscribe: usize,
    items: &[T],
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        TOTAL_TASKS.fetch_add(1, Ordering::Relaxed);
        return vec![f(items)];
    }
    let chunks: Vec<&[T]> = items
        .chunks(chunk_len(threads, oversubscribe, items.len()))
        .collect();
    par_map(threads, &chunks, |_, chunk| f(chunk))
}

/// [`par_chunks`] over parallel slices: splits `items` and `outs` (which
/// must have equal lengths) into the *same* contiguous chunk boundaries
/// and calls `f(offset, item_chunk, out_chunk)` on worker threads —
/// `offset` is the chunk's starting index in `items`, so `f` can recover
/// each element's global position — and each worker writes its results
/// straight into its exclusive slice of the output buffer: no per-chunk
/// allocation, no merge step. The segment-major support counter uses this
/// to accumulate per-candidate partial counts in place, one pass per row
/// segment.
///
/// Chunks are *stolen*, not statically striped: each `(offset, items,
/// outs)` triple sits in a take-once slot, and the work-stealing core
/// hands slot indices to whichever worker is free. Each output element is
/// written by exactly one worker, so the result is deterministic —
/// identical to the sequential loop — for every thread count and
/// schedule.
///
/// # Panics
/// Panics if `items.len() != outs.len()`.
pub fn par_chunks_zip_mut<T: Sync, U: Send>(
    threads: usize,
    oversubscribe: usize,
    items: &[T],
    outs: &mut [U],
    f: impl Fn(usize, &[T], &mut [U]) + Sync,
) {
    assert_eq!(
        items.len(),
        outs.len(),
        "par_chunks_zip_mut: items and outs must be parallel slices"
    );
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        if !items.is_empty() {
            TOTAL_TASKS.fetch_add(1, Ordering::Relaxed);
            f(0, items, outs);
        }
        return;
    }
    let cl = chunk_len(threads, oversubscribe, items.len());
    // Take-once slots transfer ownership of each `&mut` output chunk to
    // exactly one worker — the safe-Rust route to stealable mutable work.
    type Chunk<'a, T, U> = (usize, &'a [T], &'a mut [U]);
    let slots: Vec<Mutex<Option<Chunk<'_, T, U>>>> = items
        .chunks(cl)
        .zip(outs.chunks_mut(cl))
        .enumerate()
        .map(|(c, (chunk, out))| Mutex::new(Some((c * cl, chunk, out))))
        .collect();
    if slots.len() < 2 {
        // One chunk: the scheduler needs two tasks to matter.
        for slot in slots {
            if let Some((offset, chunk, out)) = slot.into_inner().expect("chunk slot poisoned") {
                TOTAL_TASKS.fetch_add(1, Ordering::Relaxed);
                f(offset, chunk, out);
            }
        }
        return;
    }
    let threads = threads.min(slots.len());
    ws_run(threads, slots.len(), 1, |_, start, stop| {
        for slot in &slots[start..stop] {
            let (offset, chunk, out) = slot
                .lock()
                .expect("chunk slot poisoned")
                .take()
                .expect("chunk slot processed twice");
            f(offset, chunk, out);
        }
    });
}

/// Runs two closures, on two scoped threads when `parallel` is true, and
/// returns both results. The FK duality check uses this for its two
/// recursive sub-problems (heterogeneous result types keep it off the
/// homogeneous range deques; it shares the scheduler's stats layer via
/// the `joins` counter). `parallel == false` degenerates to plain
/// sequential calls on the current thread.
pub fn join<RA: Send, RB: Send>(
    parallel: bool,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if !parallel {
        return (a(), b());
    }
    TOTAL_JOINS.fetch_add(1, Ordering::Relaxed);
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("parallel worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..997).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    /// Serializes the tests that mutate the process-global grain (cargo
    /// runs tests concurrently; the grain is a scheduling knob shared by
    /// every batch in the process).
    static GRAIN_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_order_is_grain_invariant() {
        let _g = GRAIN_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..500).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 7 + 1).collect();
        for grain in [1, 2, 3, 17, 250, 10_000] {
            set_default_grain(grain);
            for threads in [2, 4, 8] {
                let out = par_map(threads, &items, |_, &x| x * 7 + 1);
                assert_eq!(out, expected, "grain={grain} threads={threads}");
            }
        }
        set_default_grain(0);
    }

    #[test]
    fn par_map_runs_on_multiple_threads() {
        let items: Vec<usize> = (0..64).collect();
        let seen = Mutex::new(HashSet::new());
        par_map(4, &items, |_, _| {
            // Slow the items down a little so the scheduler actually
            // spreads them; thread-id collection proves multi-threading
            // (on a single-core box all four workers still exist).
            std::thread::sleep(std::time::Duration::from_micros(100));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn steal_heavy_skew_stays_ordered() {
        // One giant item among many tiny ones — the adversarial shape for
        // static splitting. The worker that draws item 0 stalls; the
        // others must steal the rest of its seeded range, and the merge
        // must still be in item order.
        let items: Vec<usize> = (0..256).collect();
        let out = par_map(4, &items, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_counters_accumulate() {
        // Sibling tests run concurrently and also bump the global
        // counters, so every assertion here is a monotone lower bound.
        let _g = GRAIN_LOCK.lock().unwrap();
        reset_scheduler_stats();
        set_default_grain(8);
        let items: Vec<usize> = (0..512).collect();
        let _ = par_map(4, &items, |_, &x| x);
        set_default_grain(0);
        let stats = scheduler_stats();
        // 512 items at grain 8 make at least 64 leaves.
        assert!(stats.tasks >= 64, "tasks={}", stats.tasks);
        assert!(stats.splits > 0, "splits={}", stats.splits);
        assert!(!stats.per_worker.is_empty());
        let per_total: u64 = stats.per_worker.iter().map(|&(t, _)| t).sum();
        assert!(per_total >= 64, "per-worker tasks={per_total}");

        let before = stats.joins;
        let _ = join(true, || 1, || 2);
        assert!(scheduler_stats().joins > before);
    }

    #[test]
    fn par_chunks_concat_matches_sequential() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 5] {
            let chunked = par_chunks(threads, 4, &items, |chunk| {
                chunk.iter().map(|x| x + 1).collect::<Vec<_>>()
            });
            let flat: Vec<u32> = chunked.concat();
            assert_eq!(flat, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_empty() {
        let empty: Vec<u32> = vec![];
        assert!(par_chunks(4, 4, &empty, |c| c.len()).is_empty());
    }

    /// Satellite audit (ISSUE 7): pin the chunk-boundary arithmetic for
    /// the off-by-one shapes — `oversubscribe = 0`, `len < threads`, and
    /// the undershoot case where `ceil(len / chunk_len)` yields fewer
    /// chunks than requested.
    #[test]
    fn par_chunks_boundary_arithmetic() {
        // oversubscribe = 0 behaves as 1: `threads` chunks.
        let items: Vec<u32> = (0..8).collect();
        let sizes = par_chunks(2, 0, &items, |c| c.len());
        assert_eq!(sizes, vec![4, 4]);

        // len = 6, threads = 2, oversubscribe = 2 → n_chunks = 4,
        // chunk_len = 2 → only 3 actual chunks, none empty.
        let items: Vec<u32> = (0..6).collect();
        let chunks = par_chunks(2, 2, &items, |c| c.to_vec());
        assert_eq!(chunks, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);

        // len = 5 < threads * oversubscribe: n_chunks clamps to len=5?
        // threads clamps to len first (5), then n_chunks = min(5*1, 5).
        let items: Vec<u32> = (0..5).collect();
        let sizes = par_chunks(8, 1, &items, |c| c.len());
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert!(sizes.iter().all(|&s| s >= 1));

        // len = 7, threads = 3, oversubscribe = 1 → chunk_len = 3 →
        // chunks of 3, 3, 1 at offsets 0, 3, 6.
        let items: Vec<u32> = (0..7).collect();
        let offsets_seen = Mutex::new(Vec::new());
        let mut outs = vec![0u8; items.len()];
        par_chunks_zip_mut(3, 1, &items, &mut outs, |offset, chunk, out| {
            offsets_seen.lock().unwrap().push((offset, chunk.len()));
            for (k, o) in out.iter_mut().enumerate() {
                *o = (offset + k) as u8;
            }
        });
        let mut seen = offsets_seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 3), (3, 3), (6, 1)]);
        assert_eq!(outs, (0..7).map(|i| i as u8).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_zip_mut_matches_sequential() {
        let items: Vec<u32> = (0..997).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            for oversubscribe in [0, 1, 4] {
                let mut outs = vec![0u64; items.len()];
                par_chunks_zip_mut(
                    threads,
                    oversubscribe,
                    &items,
                    &mut outs,
                    |offset, chunk, out| {
                        for (k, (x, o)) in chunk.iter().zip(out.iter_mut()).enumerate() {
                            // The offset recovers the global index.
                            assert_eq!(offset + k, *x as usize);
                            *o = *x as u64 * 3 + 1;
                        }
                    },
                );
                assert_eq!(outs, expected, "threads={threads} over={oversubscribe}");
            }
        }
    }

    #[test]
    fn par_chunks_zip_mut_accumulates_in_place() {
        // Two passes add into the same buffer — the segment-major pattern.
        let items: Vec<u32> = (0..100).collect();
        let mut outs = vec![0u64; items.len()];
        for pass in 0..2 {
            par_chunks_zip_mut(3, 4, &items, &mut outs, |_, chunk, out| {
                for (x, o) in chunk.iter().zip(out.iter_mut()) {
                    *o += (*x + pass) as u64;
                }
            });
        }
        let expected: Vec<u64> = items.iter().map(|&x| (2 * x + 1) as u64).collect();
        assert_eq!(outs, expected);
    }

    #[test]
    fn par_chunks_zip_mut_empty_and_singleton() {
        let mut outs: Vec<u64> = vec![];
        par_chunks_zip_mut(4, 4, &[] as &[u32], &mut outs, |_, _, _| {
            panic!("no chunks")
        });
        let mut one = vec![0u64];
        par_chunks_zip_mut(4, 4, &[7u32], &mut one, |off, c, o| {
            o[0] = c[0] as u64 + off as u64 + 1
        });
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "parallel slices")]
    fn par_chunks_zip_mut_length_mismatch_panics() {
        let mut outs = vec![0u64; 2];
        par_chunks_zip_mut(2, 1, &[1u32, 2, 3], &mut outs, |_, _, _| {});
    }

    #[test]
    fn join_returns_both() {
        for parallel in [false, true] {
            let (a, b) = join(parallel, || 1 + 1, || "x".to_string());
            assert_eq!(a, 2);
            assert_eq!(b, "x");
        }
    }

    #[test]
    fn join_borrows_environment() {
        let data = [1, 2, 3];
        let (s, l) = join(true, || data.iter().sum::<i32>(), || data.len());
        assert_eq!((s, l), (6, 3));
    }

    #[test]
    fn abort_flag_is_sticky_and_shareable() {
        let flag = AbortFlag::new();
        assert!(!flag.is_set());
        let items: Vec<usize> = (0..64).collect();
        let seen = par_map(4, &items, |_, &i| {
            if i == 7 {
                flag.raise();
            }
            flag.is_set()
        });
        assert_eq!(seen.len(), 64);
        assert!(flag.is_set());
        flag.raise(); // idempotent
        assert!(flag.is_set());
    }
}
