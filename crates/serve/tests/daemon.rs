//! End-to-end daemon tests: a real server on an ephemeral TCP port, real
//! client connections, and the full protocol — cache bit-identity,
//! in-flight deduplication under concurrent clients, incremental
//! re-mining, cancellation, checkpoint resume over the wire, and the
//! error-code contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dualminer_serve::client::{Conn, Event};
use dualminer_serve::server::{start, ServeConfig, ServerHandle};

const BASKETS: &str = "milk bread\nbread butter\nmilk butter bread\nmilk\nbread eggs\n";
const RELATION: &str = "a,b,c\n1,2,3\n1,2,4\n5,2,3\n";
// f = {{a,b},{c}} has Tr(f) = {{a,c},{b,c}}.
const DUAL_F: &str = "a b\nc\n";
const DUAL_G: &str = "a c\nb c\n";

fn serve(workers: usize) -> (ServerHandle, String) {
    let handle = start(&ServeConfig {
        tcp: Some("127.0.0.1:0".into()),
        unix: None,
        workers,
        cache_entries: 64,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.tcp_addr.expect("tcp listener").to_string();
    (handle, addr)
}

/// Escapes a text payload for embedding as a JSON string value.
fn jesc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A `mine` job line over inline input.
fn mine_line(id: u64, input: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"mine","id":{id},"input":{{"inline":"{}"}},"min_support":"2"{extra}}}"#,
        jesc(input)
    )
}

fn terminal(events: &[Event]) -> &Event {
    events.last().expect("at least one event")
}

fn field<'a>(ev: &'a Event, key: &str) -> &'a str {
    ev.str_field(key).unwrap_or_else(|| panic!("{key} missing"))
}

/// A hypergraph of `k` disjoint pairs; |Tr| = 2^k.
fn pairs_hypergraph(k: usize) -> String {
    (0..k).map(|i| format!("a{i} b{i}\n")).collect()
}

#[test]
fn cached_repeat_is_bit_identical_for_every_op() {
    let (handle, addr) = serve(2);
    let mut conn = Conn::connect(&addr).unwrap();
    let jobs: Vec<(&str, String)> = vec![
        ("mine", mine_line(0, BASKETS, "")),
        (
            "transversals",
            format!(
                r#"{{"op":"transversals","id":0,"input":{{"inline":"{}"}}}}"#,
                jesc(&pairs_hypergraph(3))
            ),
        ),
        (
            "keys",
            format!(
                r#"{{"op":"keys","id":0,"input":{{"inline":"{}"}},"fds":true}}"#,
                jesc(RELATION)
            ),
        ),
        (
            "verify-dual",
            format!(
                r#"{{"op":"verify-dual","id":0,"input":{{"inline":"{}"}},"input2":{{"inline":"{}"}}}}"#,
                jesc(DUAL_F),
                jesc(DUAL_G)
            ),
        ),
    ];
    let next_id = AtomicU64::new(1);
    let mut send = |line: &str, cache: Option<&str>| -> Vec<Event> {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let mut line = line.replace(r#""id":0"#, &format!(r#""id":{id}"#));
        if let Some(mode) = cache {
            let patched = line.replacen('{', &format!(r#"{{"cache":"{mode}","#), 1);
            line = patched;
        }
        conn.roundtrip(&line, id).unwrap()
    };
    for (op, line) in &jobs {
        let cold = send(line, None);
        let warm = send(line, None);
        let fresh = send(line, Some("bypass"));
        let (cold, warm, fresh) = (terminal(&cold), terminal(&warm), terminal(&fresh));
        for ev in [cold, warm, fresh] {
            assert_eq!(ev.kind, "result", "{op}: {:?}", ev.fields);
        }
        assert_eq!(field(cold, "cache"), "miss", "{op}");
        assert_eq!(field(warm, "cache"), "hit", "{op}");
        assert_eq!(field(fresh, "cache"), "miss", "{op}: bypass recomputes");
        // The cached body and stats artifact are the stored strings —
        // byte-identical — and a forced fresh run reproduces the body.
        assert_eq!(field(cold, "body"), field(warm, "body"), "{op}");
        assert_eq!(field(cold, "stats"), field(warm, "stats"), "{op}");
        assert_eq!(field(cold, "body"), field(fresh, "body"), "{op}");
        assert_eq!(cold.int_field("exit"), warm.int_field("exit"), "{op}");
        assert_eq!(
            field(cold, "fingerprint"),
            field(warm, "fingerprint"),
            "{op}"
        );
        assert!(!field(cold, "body").is_empty(), "{op}");
    }
    // 4 ops × (cold + bypass) computed, 4 warm hits, nothing else.
    let id = next_id.fetch_add(1, Ordering::Relaxed);
    let stats = conn
        .roundtrip(&format!(r#"{{"op":"server-stats","id":{id}}}"#), id)
        .unwrap();
    let stats = terminal(&stats);
    assert_eq!(stats.int_field("computations"), Some(8));
    assert_eq!(stats.int_field("cache_hits"), Some(4));
    assert_eq!(stats.int_field("errors"), Some(0));
    handle.shutdown();
    handle.join();
}

#[test]
fn warm_hit_runs_no_engine_and_streams_no_progress() {
    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();
    let line = mine_line(1, BASKETS, r#","progress":true"#);
    let cold = conn.roundtrip(&line, 1).unwrap();
    assert!(
        cold.iter().any(|e| e.kind == "progress"),
        "cold run narrates levels"
    );
    let line = mine_line(2, BASKETS, r#","progress":true"#);
    let warm = conn.roundtrip(&line, 2).unwrap();
    assert_eq!(field(terminal(&warm), "cache"), "hit");
    assert!(
        warm.iter().all(|e| e.kind != "progress"),
        "a warm hit runs no engine, so nothing narrates"
    );
    let stats = conn
        .roundtrip(r#"{"op":"server-stats","id":3}"#, 3)
        .unwrap();
    assert_eq!(
        terminal(&stats).int_field("computations"),
        Some(1),
        "the warm hit performed no oracle queries"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn incremental_append_reuses_the_cached_base() {
    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();
    let appended = format!("{BASKETS}milk eggs\nbread milk\n");

    let base = conn.roundtrip(&mine_line(1, BASKETS, ""), 1).unwrap();
    assert_eq!(field(terminal(&base), "cache"), "miss");

    let inc = conn.roundtrip(&mine_line(2, &appended, ""), 2).unwrap();
    let inc_result = terminal(&inc);
    assert_eq!(field(inc_result, "cache"), "incremental");
    assert!(
        inc.iter().any(|e| e.kind == "note"
            && e.str_field("text")
                .is_some_and(|t| t.contains("incremental base covers 5 of 7 rows"))),
        "the note narrates the reused base: {inc:?}"
    );

    // Byte-identical to a from-scratch run on the appended input.
    let fresh = conn
        .roundtrip(&mine_line(3, &appended, r#","cache":"bypass""#), 3)
        .unwrap();
    let fresh = terminal(&fresh);
    assert_eq!(field(fresh, "cache"), "miss");
    assert_eq!(field(inc_result, "body"), field(fresh, "body"));

    // And the incremental result was re-cached under the new fingerprint.
    let warm = conn.roundtrip(&mine_line(4, &appended, ""), 4).unwrap();
    assert_eq!(field(terminal(&warm), "cache"), "hit");
    assert_eq!(field(terminal(&warm), "body"), field(fresh, "body"));

    let stats = conn
        .roundtrip(r#"{"op":"server-stats","id":5}"#, 5)
        .unwrap();
    assert_eq!(terminal(&stats).int_field("incremental"), Some(1));
    handle.shutdown();
    handle.join();
}

#[test]
fn relative_support_and_budgeted_runs_fall_back_to_cold_mining() {
    // Neither route may use the FUP update: a relative threshold resolves
    // differently on the appended row count, and a budget could interrupt
    // the update at a state that is not bit-identical to from-scratch.
    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();
    let appended = format!("{BASKETS}milk eggs\n");
    let base = format!(
        r#"{{"op":"mine","id":1,"input":{{"inline":"{}"}},"min_support":"0.4"}}"#,
        jesc(BASKETS)
    );
    assert_eq!(
        field(terminal(&conn.roundtrip(&base, 1).unwrap()), "cache"),
        "miss"
    );
    let rel = format!(
        r#"{{"op":"mine","id":2,"input":{{"inline":"{}"}},"min_support":"0.4"}}"#,
        jesc(&appended)
    );
    assert_eq!(
        field(terminal(&conn.roundtrip(&rel, 2).unwrap()), "cache"),
        "miss",
        "relative support is never served incrementally"
    );
    let budgeted = mine_line(3, &appended, r#","run":{"max_queries":100000}"#);
    assert_eq!(
        field(terminal(&conn.roundtrip(&budgeted, 3).unwrap()), "cache"),
        "miss",
        "a budgeted run is never served incrementally"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_clients_run_identical_jobs_once() {
    let (handle, addr) = serve(4);
    // One slow job shape (2^14 transversals) shared by three clients, and
    // three quick distinct jobs — four computations total, ever.
    let big = pairs_hypergraph(14);
    let slow_line = |id: u64| {
        format!(
            r#"{{"op":"transversals","id":{id},"input":{{"inline":"{}"}}}}"#,
            jesc(&big)
        )
    };
    let quick_line = |id: u64, k: usize| {
        format!(
            r#"{{"op":"transversals","id":{id},"input":{{"inline":"{}"}}}}"#,
            jesc(&pairs_hypergraph(k))
        )
    };

    // Seed the slow job, give it a head start into the engine, then pile
    // on duplicates and distinct work from five more clients.
    let first = std::thread::spawn({
        let addr = addr.clone();
        let line = slow_line(101);
        move || {
            let mut conn = Conn::connect(&addr).unwrap();
            conn.roundtrip(&line, 101).unwrap()
        }
    });
    std::thread::sleep(Duration::from_millis(60));
    let mut others = Vec::new();
    for (id, line) in [
        (102, slow_line(102)),
        (103, slow_line(103)),
        (201, quick_line(201, 3)),
        (202, quick_line(202, 4)),
        (203, quick_line(203, 5)),
    ] {
        others.push(std::thread::spawn({
            let addr = addr.clone();
            move || {
                let mut conn = Conn::connect(&addr).unwrap();
                let mut events = Vec::new();
                conn.send_line(&line).unwrap();
                loop {
                    let ev = conn.next_event().unwrap().expect("server stays up");
                    // Per-client streams: a connection only ever sees its
                    // own job's events.
                    assert_eq!(ev.id, id, "cross-talk on {id}: {:?}", ev.fields);
                    let done = ev.kind == "result" || ev.kind == "error";
                    events.push(ev);
                    if done {
                        return events;
                    }
                }
            }
        }));
    }
    let slow_ref = first.join().unwrap();
    let slow_ref = terminal(&slow_ref);
    assert_eq!(slow_ref.kind, "result");
    let results: Vec<Vec<Event>> = others.into_iter().map(|t| t.join().unwrap()).collect();
    for events in &results[..2] {
        let dup = terminal(events);
        assert_eq!(dup.kind, "result");
        // Whichever way the race went, the duplicate was not recomputed…
        assert!(
            matches!(field(dup, "cache"), "hit" | "coalesced"),
            "duplicate recomputed: {:?}",
            dup.fields
        );
        // …and shares the original's bytes.
        assert_eq!(field(dup, "body"), field(slow_ref, "body"));
        assert_eq!(field(dup, "stats"), field(slow_ref, "stats"));
    }
    for (events, k) in results[2..].iter().zip([3usize, 4, 5]) {
        let ev = terminal(events);
        assert_eq!(ev.kind, "result");
        assert_eq!(field(ev, "cache"), "miss");
        assert!(
            field(ev, "body").contains(&format!("Tr(H): {} minimal transversals", 1usize << k)),
            "wrong body for k={k}"
        );
    }

    let mut conn = Conn::connect(&addr).unwrap();
    let stats = conn
        .roundtrip(r#"{"op":"server-stats","id":900}"#, 900)
        .unwrap();
    let stats = terminal(&stats);
    assert_eq!(
        stats.int_field("computations"),
        Some(4),
        "six jobs, four fingerprints, four computations: {:?}",
        stats.fields
    );
    assert_eq!(stats.int_field("jobs"), Some(6));

    // Clean shutdown over the protocol: the acknowledgement arrives, and
    // join() returns — no orphaned worker or connection threads.
    let down = conn
        .roundtrip(r#"{"op":"shutdown","id":901}"#, 901)
        .unwrap();
    assert_eq!(terminal(&down).kind, "shutdown");
    handle.join();
}

#[test]
fn cancel_stops_a_running_job() {
    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();
    // 2^22 transversals: far more work than a test should wait for, so
    // only cancellation can finish this quickly.
    let line = format!(
        r#"{{"op":"transversals","id":1,"input":{{"inline":"{}"}},"progress":true}}"#,
        jesc(&pairs_hypergraph(22))
    );
    conn.send_line(&line).unwrap();
    // Wait until the job is demonstrably inside the engine.
    loop {
        let ev = conn.next_event().unwrap().expect("server stays up");
        if ev.kind == "progress"
            && ev
                .str_field("text")
                .is_some_and(|t| t.contains("phase transversals started"))
        {
            break;
        }
        assert_ne!(ev.kind, "result", "job finished before cancel");
    }
    conn.send_line(r#"{"op":"cancel","id":2,"job":1}"#).unwrap();
    let (mut saw_ack, mut saw_result) = (false, false);
    while !(saw_ack && saw_result) {
        let ev = conn.next_event().unwrap().expect("server stays up");
        match (ev.kind.as_str(), ev.id) {
            ("cancelled", 2) => {
                assert_eq!(ev.fields.get("found").and_then(|v| v.as_bool()), Some(true));
                saw_ack = true;
            }
            ("result", 1) => {
                assert_eq!(field(&ev, "outcome"), "budget:cancelled");
                assert_eq!(ev.int_field("exit"), Some(6));
                saw_result = true;
            }
            _ => {}
        }
    }
    // A cancelled (partial) run must not poison the cache: rerunning the
    // same fingerprint computes fresh.
    let stats = conn
        .roundtrip(r#"{"op":"server-stats","id":3}"#, 3)
        .unwrap();
    assert_eq!(terminal(&stats).int_field("cache_entries"), Some(0));
    handle.shutdown();
    handle.join();
}

#[test]
fn resume_over_the_daemon_reproduces_the_from_scratch_result() {
    let dir = std::env::temp_dir().join(format!("dualminer-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("mine.ckpt");
    let ckpt = ckpt.to_str().unwrap();

    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();

    // Reference: a plain from-scratch run.
    let reference = conn.roundtrip(&mine_line(1, BASKETS, ""), 1).unwrap();
    let reference = terminal(&reference);
    assert_eq!(reference.kind, "result");

    // A budget-killed checkpointing run: exit 6, safe point on disk.
    let cut = mine_line(
        2,
        BASKETS,
        &format!(
            r#","run":{{"checkpoint":"{}","checkpoint_every":1,"max_queries":3}}"#,
            jesc(ckpt)
        ),
    );
    let cut = conn.roundtrip(&cut, 2).unwrap();
    let cut = terminal(&cut);
    assert_eq!(cut.kind, "result", "{:?}", cut.fields);
    assert_eq!(cut.int_field("exit"), Some(6));
    assert!(field(cut, "outcome").starts_with("budget:"));
    assert!(std::path::Path::new(ckpt).exists(), "safe point persisted");

    // Resume over the daemon: completes, and the body is byte-identical
    // to the undisturbed run (checkpoint accounting included).
    let resumed = mine_line(
        3,
        BASKETS,
        &format!(r#","run":{{"checkpoint":"{}","resume":true}}"#, jesc(ckpt)),
    );
    let resumed = conn.roundtrip(&resumed, 3).unwrap();
    assert!(
        resumed.iter().any(
            |e| e.kind == "note" && e.str_field("text").is_some_and(|t| t.contains("resuming"))
        ),
        "{resumed:?}"
    );
    let resumed = terminal(&resumed);
    assert_eq!(resumed.int_field("exit"), Some(0));
    assert_eq!(field(resumed, "body"), field(reference, "body"));

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_and_input_errors_carry_their_exit_codes() {
    let (handle, addr) = serve(1);
    let mut conn = Conn::connect(&addr).unwrap();

    // Garbage line: protocol error (7), id 0 (no id was parseable).
    conn.send_line("this is not json").unwrap();
    let ev = conn.next_event().unwrap().unwrap();
    assert_eq!((ev.kind.as_str(), ev.id), ("error", 0));
    assert_eq!(ev.int_field("code"), Some(7));

    // Well-formed JSON missing required fields: still 7.
    conn.send_line(r#"{"op":"mine","id":9}"#).unwrap();
    let ev = conn.next_event().unwrap().unwrap();
    assert_eq!(ev.int_field("code"), Some(7));

    // A path the server cannot read: I/O (4).
    conn.send_line(
        r#"{"op":"mine","id":10,"input":{"path":"/nonexistent/x.txt"},"min_support":"2"}"#,
    )
    .unwrap();
    let events = {
        let mut v = Vec::new();
        loop {
            let ev = conn.next_event().unwrap().unwrap();
            let done = ev.kind == "error";
            v.push(ev);
            if done {
                break;
            }
        }
        v
    };
    let ev = terminal(&events);
    assert_eq!((ev.id, ev.int_field("code")), (10, Some(4)));
    assert!(field(ev, "message").contains("cannot read"));

    // Malformed inline input: parse error (3), attributed to <inline>.
    conn.send_line(&format!(
        r#"{{"op":"keys","id":11,"input":{{"inline":"{}"}}}}"#,
        jesc("a,b\n1\n")
    ))
    .unwrap();
    let ev = loop {
        let ev = conn.next_event().unwrap().unwrap();
        if ev.kind == "error" {
            break ev;
        }
    };
    assert_eq!((ev.id, ev.int_field("code")), (11, Some(3)));
    assert!(field(&ev, "message").contains("<inline>"));

    // The connection survives every error; errors are counted.
    let stats = conn
        .roundtrip(r#"{"op":"server-stats","id":12}"#, 12)
        .unwrap();
    assert_eq!(terminal(&stats).int_field("errors"), Some(4));
    handle.shutdown();
    handle.join();
}
