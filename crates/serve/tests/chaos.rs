//! Socket-level chaos harness: seeded, deterministic hostile-client
//! scenarios against a real server — partial writes, mid-frame
//! disconnects, stalled readers, garbage bytes, burst storms — plus the
//! overload-safety contracts (admission control, deadlines, input
//! limits) and crash-safe cache persistence.
//!
//! Every scenario asserts three invariants: the server never panics, the
//! worker/connection gauges return to idle afterward (no leaks), and the
//! requests that *are* answered stay bit-identical to an unloaded run.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use dualminer_serve::client::{Conn, Event};
use dualminer_serve::server::{start, ServeConfig, ServerHandle};

const BASKETS: &str = "milk bread\nbread butter\nmilk butter bread\nmilk\nbread eggs\n";

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

/// Hand-rolled xorshift64* — the chaos schedule (chunk sizes, garbage
/// bytes) must be reproducible from a fixed seed, and the test crate has
/// no RNG dependency.
struct ChaosRng(u64);

impl ChaosRng {
    fn new(seed: u64) -> ChaosRng {
        ChaosRng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span.max(1)
    }
}

/// A hostile client's write half: sends bytes in seeded random chunks
/// with a flush after each, so the server sees every partial-frame
/// boundary the kernel will give us.
struct ChaosStream {
    inner: TcpStream,
    rng: ChaosRng,
}

impl ChaosStream {
    fn connect(addr: &str, seed: u64) -> ChaosStream {
        let inner = TcpStream::connect(addr).expect("connect chaos stream");
        let _ = inner.set_nodelay(true);
        ChaosStream {
            inner,
            rng: ChaosRng::new(seed),
        }
    }

    /// Writes `data` in chunks of 1..=7 bytes, flushing between chunks.
    fn send_chunked(&mut self, data: &[u8]) {
        let mut at = 0;
        while at < data.len() {
            let n = (1 + self.rng.below(7) as usize).min(data.len() - at);
            self.inner.write_all(&data[at..at + n]).expect("chunk");
            self.inner.flush().expect("flush");
            at += n;
        }
    }

    /// A line of seeded garbage (no newline characters) plus terminator.
    fn send_garbage_line(&mut self, len: usize) {
        let mut line = Vec::with_capacity(len + 1);
        for _ in 0..len {
            // Printable-ish garbage with JSON punctuation mixed in.
            let b = match self.rng.below(6) {
                0 => b'{',
                1 => b'"',
                2 => b':',
                3 => b'\\',
                _ => (32 + self.rng.below(94)) as u8,
            };
            line.push(b);
        }
        line.push(b'\n');
        self.send_chunked(&line);
    }
}

fn serve(config: ServeConfig) -> (ServerHandle, String) {
    let handle = start(&ServeConfig {
        tcp: Some("127.0.0.1:0".into()),
        ..config
    })
    .expect("bind an ephemeral port");
    let addr = handle.tcp_addr.expect("tcp listener").to_string();
    (handle, addr)
}

fn jesc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn mine_line(id: u64, input: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"mine","id":{id},"input":{{"inline":"{}"}},"min_support":"2"{extra}}}"#,
        jesc(input)
    )
}

/// A hypergraph of `k` disjoint pairs; |Tr| = 2^k. Used both as a slow
/// job (large k enumerates forever) and as a huge-output job.
fn pairs_hypergraph(k: usize) -> String {
    (0..k).map(|i| format!("a{i} b{i}\n")).collect()
}

fn transversals_line(id: u64, input: &str, extra: &str) -> String {
    format!(
        r#"{{"op":"transversals","id":{id},"input":{{"inline":"{}"}}{extra}}}"#,
        jesc(input)
    )
}

fn terminal(events: &[Event]) -> &Event {
    events.last().expect("at least one event")
}

fn stat(ev: &Event, key: &str) -> i64 {
    ev.int_field(key)
        .unwrap_or_else(|| panic!("{key} missing from server-stats"))
}

fn server_stats(conn: &mut Conn, id: u64) -> Event {
    let events = conn
        .roundtrip(&format!(r#"{{"op":"server-stats","id":{id}}}"#), id)
        .expect("server-stats");
    terminal(&events).clone()
}

/// Polls server-stats until `pred` holds or ~10 s elapse. Keeps the
/// chaos suite deterministic without hard sleeps: every scenario ends by
/// waiting for the gauges to prove the server drained.
fn wait_stats(conn: &mut Conn, mut pred: impl FnMut(&Event) -> bool) -> Event {
    let mut last = server_stats(conn, 900_000);
    for i in 0..200 {
        if pred(&last) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
        last = server_stats(conn, 900_001 + i);
    }
    panic!("server never reached the expected state; last stats: {last:?}");
}

// ---------------------------------------------------------------------------
// Hostile-client scenarios
// ---------------------------------------------------------------------------

/// Garbage lines, byte-dribbled frames, and a mid-frame disconnect, all
/// interleaved with legitimate requests: the legit answers must be
/// bit-identical to an unloaded server's, and the gauges must return to
/// idle.
#[test]
fn chaos_partial_writes_garbage_and_disconnects_leave_answers_intact() {
    // Reference run on a quiet server.
    let (clean_handle, clean_addr) = serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut clean = Conn::connect(&clean_addr).expect("connect clean");
    let reference = clean
        .roundtrip(&mine_line(1, BASKETS, ""), 1)
        .expect("clean mine");
    let reference_body = terminal(&reference).str_field("body").unwrap().to_string();
    clean_handle.shutdown();
    drop(clean);
    clean_handle.join();

    // Chaotic server: 4 misbehaving writers + 1 honest client.
    let (handle, addr) = serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    for seed in 1..=4u64 {
        let mut chaos = ChaosStream::connect(&addr, seed);
        chaos.send_garbage_line(40 + (seed as usize) * 17);
        // A valid frame dribbled a few bytes at a time must still parse.
        chaos.send_chunked(mine_line(seed, BASKETS, "").as_bytes());
        // Mid-frame disconnect: a partial line with no newline, dropped.
        chaos
            .inner
            .write_all(br#"{"op":"mine","id":9,"input":{"inl"#)
            .expect("partial frame");
        drop(chaos);
    }
    let mut honest = Conn::connect(&addr).expect("connect honest");
    let events = honest
        .roundtrip(&mine_line(7, BASKETS, ""), 7)
        .expect("honest mine");
    let last = terminal(&events);
    assert_eq!(last.kind, "result");
    assert_eq!(
        last.str_field("body").unwrap(),
        reference_body,
        "chaos must not change answered bytes"
    );

    // All chaos connections closed, workers idle, nothing leaked. The
    // honest connection itself is still open (hence == 1).
    let stats = wait_stats(&mut honest, |s| {
        stat(s, "busy_workers") == 0 && stat(s, "open_conns") == 1
    });
    assert_eq!(stat(&stats, "busy_workers"), 0);
    handle.shutdown();
    drop(honest);
    handle.join();
}

/// A client that sends a huge-output job and then never reads: the write
/// deadline must disconnect it, release the worker, and count the stall.
#[test]
fn chaos_stalled_reader_is_disconnected_not_wedged() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        write_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    });
    // 2^17 transversals ≈ tens of MB of body: far past any kernel
    // buffering, so the server's writes must eventually block.
    let stalled = TcpStream::connect(&addr).expect("connect stalled");
    let mut w = stalled.try_clone().expect("clone");
    writeln!(w, "{}", transversals_line(1, &pairs_hypergraph(17), "")).expect("send");
    w.flush().expect("flush");
    // Never read from `stalled`. A second, honest connection watches the
    // worker come back.
    let mut watcher = Conn::connect(&addr).expect("connect watcher");
    let stats = wait_stats(&mut watcher, |s| {
        stat(s, "busy_workers") == 0 && stat(s, "write_timeouts") >= 1
    });
    assert!(stat(&stats, "write_timeouts") >= 1);
    drop(stalled);
    handle.shutdown();
    drop(watcher);
    handle.join();
}

/// A burst storm: many connections firing the same job at once. Everything
/// is answered (dedup handles the identical bursts), nothing leaks.
#[test]
fn chaos_burst_storm_drains_cleanly() {
    let (handle, addr) = serve(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr2 = addr.clone();
    let clients: Vec<_> = (0..8u64)
        .map(|i| {
            let addr = addr2.clone();
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr).expect("connect storm");
                let events = conn
                    .roundtrip(&mine_line(i + 1, BASKETS, ""), i + 1)
                    .expect("storm job");
                terminal(&events).str_field("body").unwrap().to_string()
            })
        })
        .collect();
    let bodies: Vec<String> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "divergent answers");

    let mut conn = Conn::connect(&addr).expect("connect");
    let stats = wait_stats(&mut conn, |s| {
        stat(s, "busy_workers") == 0 && stat(s, "open_conns") == 1
    });
    // The whole storm hit one fingerprint: exactly one computation.
    assert_eq!(stat(&stats, "computations"), 1);
    handle.shutdown();
    drop(conn);
    handle.join();
}

// ---------------------------------------------------------------------------
// Admission control and deadlines
// ---------------------------------------------------------------------------

/// With one worker pinned and the queue full, further jobs shed with a
/// typed `overloaded` error and a retry hint — deterministically, one
/// shed per excess job.
#[test]
fn overload_sheds_deterministically_with_retry_hint() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        max_queue: 1,
        ..ServeConfig::default()
    });
    // Pin the worker: an effectively-endless enumeration (2^20 minimal
    // transversals), cancelled at the end of the test.
    let slow = pairs_hypergraph(20);
    let mut pinner = Conn::connect(&addr).expect("connect pinner");
    pinner
        .send_line(&transversals_line(1, &slow, ""))
        .expect("send slow 1");
    let mut watcher = Conn::connect(&addr).expect("connect watcher");
    wait_stats(&mut watcher, |s| stat(s, "busy_workers") == 1);
    // Fill the queue (len 1 == max_queue).
    pinner
        .send_line(&transversals_line(2, &slow, ""))
        .expect("send slow 2");
    wait_stats(&mut watcher, |s| stat(s, "jobs") == 2);

    // Every further job is shed, in under the acceptance bound.
    let mut requester = Conn::connect(&addr).expect("connect requester");
    for id in 10..13u64 {
        let t0 = std::time::Instant::now();
        let events = requester
            .roundtrip(&mine_line(id, BASKETS, ""), id)
            .expect("shed roundtrip");
        let shed_in = t0.elapsed();
        let last = terminal(&events);
        assert_eq!(last.kind, "error");
        assert_eq!(last.int_field("code"), Some(7));
        assert_eq!(last.str_field("kind"), Some("overloaded"));
        let hint = last.int_field("retry_after_ms").expect("retry hint");
        assert!(hint >= 25, "hint {hint} below floor");
        assert!(
            shed_in < Duration::from_millis(500),
            "shed took {shed_in:?}"
        );
    }
    let stats = server_stats(&mut watcher, 500);
    assert_eq!(
        stat(&stats, "shed_queue_full"),
        3,
        "one shed per excess job"
    );
    // Shed jobs are not admitted: still only the two slow ones.
    assert_eq!(stat(&stats, "jobs"), 2);

    // Cancel the pinned jobs so shutdown drains promptly.
    for job in [1u64, 2] {
        pinner
            .roundtrip(
                &format!(r#"{{"op":"cancel","id":{},"job":{job}}}"#, 90 + job),
                90 + job,
            )
            .expect("cancel");
    }
    handle.shutdown();
    drop((pinner, watcher, requester));
    handle.join();
}

/// The per-connection in-flight bound sheds the excess job on that
/// connection while other connections stay unaffected.
#[test]
fn per_connection_inflight_limit_sheds_typed() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        max_inflight_per_conn: 1,
        ..ServeConfig::default()
    });
    let slow = pairs_hypergraph(20);
    let mut conn = Conn::connect(&addr).expect("connect");
    conn.send_line(&transversals_line(1, &slow, ""))
        .expect("send slow");
    // The reader thread registers jobs in order, so by the time it reads
    // this second line, job 1 is in flight: deterministic shed.
    let events = conn
        .roundtrip(&mine_line(2, BASKETS, ""), 2)
        .expect("second job");
    let last = terminal(&events);
    assert_eq!(last.kind, "error");
    assert_eq!(last.str_field("kind"), Some("overloaded"));
    assert!(last.int_field("retry_after_ms").is_some());

    // Another connection is not affected by this connection's limit.
    let mut other = Conn::connect(&addr).expect("connect other");
    let stats = server_stats(&mut other, 50);
    assert_eq!(stat(&stats, "shed_conn_limit"), 1);

    conn.roundtrip(r#"{"op":"cancel","id":9,"job":1}"#, 9)
        .expect("cancel");
    handle.shutdown();
    drop((conn, other));
    handle.join();
}

/// `--default-timeout` gives a deadline to jobs that request none; the
/// deadline runs from admission, and an aged-out job returns the typed
/// partial-result contract (exit 6, `budget:deadline`) instead of
/// running.
#[test]
fn server_deadline_clamps_unbudgeted_jobs() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        // So short every job has aged out by the time a worker picks it
        // up: the shed-before-compute path, deterministically.
        default_timeout: Some(Duration::from_nanos(1)),
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let events = conn
        .roundtrip(&transversals_line(1, &pairs_hypergraph(12), ""), 1)
        .expect("clamped job");
    let last = terminal(&events);
    assert_eq!(last.kind, "result");
    assert_eq!(last.int_field("exit"), Some(6));
    assert_eq!(last.str_field("outcome"), Some("budget:deadline"));
    assert!(last
        .str_field("body")
        .unwrap()
        .contains("budget exceeded (deadline)"));
    let stats = server_stats(&mut conn, 2);
    assert_eq!(stat(&stats, "deadline_clamped"), 1);
    assert_eq!(stat(&stats, "shed_deadline"), 1);
    handle.shutdown();
    drop(conn);
    handle.join();
}

/// `--max-timeout` caps a requested timeout the same way.
#[test]
fn server_max_timeout_caps_requested_budgets() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        max_timeout: Some(Duration::from_nanos(1)),
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let events = conn
        .roundtrip(
            &transversals_line(1, &pairs_hypergraph(12), r#","run":{"timeout":"5m"}"#),
            1,
        )
        .expect("capped job");
    let last = terminal(&events);
    assert_eq!(last.int_field("exit"), Some(6));
    assert_eq!(last.str_field("outcome"), Some("budget:deadline"));
    let stats = server_stats(&mut conn, 2);
    assert_eq!(stat(&stats, "deadline_clamped"), 1);
    handle.shutdown();
    drop(conn);
    handle.join();
}

// ---------------------------------------------------------------------------
// Input hardening
// ---------------------------------------------------------------------------

/// Row/item bounds reject with a typed `too_large` error before any
/// parsing; within-bounds inputs still succeed on the same server.
#[test]
fn input_size_limits_reject_typed() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        max_rows: 4,
        max_items: 10,
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    // 5 rows > 4.
    let events = conn
        .roundtrip(&mine_line(1, BASKETS, ""), 1)
        .expect("too many rows");
    let last = terminal(&events);
    assert_eq!(last.kind, "error");
    assert_eq!(last.int_field("code"), Some(3));
    assert_eq!(last.str_field("kind"), Some("too_large"));
    assert!(last.str_field("message").unwrap().contains("max-rows"));
    // A within-bounds input on the same connection still works.
    let events = conn
        .roundtrip(&mine_line(2, "a b\na b\n", ""), 2)
        .expect("small job");
    assert_eq!(terminal(&events).kind, "result");
    let stats = server_stats(&mut conn, 3);
    assert_eq!(stat(&stats, "too_large"), 1);
    handle.shutdown();
    drop(conn);
    handle.join();
}

/// An oversized frame gets a typed `too_large` error and the connection
/// is closed (the stream cannot be resynchronized mid-frame).
#[test]
fn oversized_frames_are_rejected_and_disconnected() {
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        max_frame_bytes: 256,
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let huge = mine_line(1, &"x y\n".repeat(200), "");
    assert!(huge.len() > 256);
    conn.send_line(&huge).expect("send oversized");
    let event = conn
        .next_event()
        .expect("read rejection")
        .expect("rejection event");
    assert_eq!(event.kind, "error");
    assert_eq!(event.int_field("code"), Some(3));
    assert_eq!(event.str_field("kind"), Some("too_large"));
    // Server closes the connection afterward.
    assert!(conn.next_event().expect("eof").is_none());
    // The server itself is fine.
    let mut other = Conn::connect(&addr).expect("connect other");
    let events = other
        .roundtrip(&mine_line(5, "a b\na b\n", ""), 5)
        .expect("normal job");
    assert_eq!(terminal(&events).kind, "result");
    handle.shutdown();
    drop(other);
    handle.join();
}

// ---------------------------------------------------------------------------
// Crash-safe cache persistence
// ---------------------------------------------------------------------------

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dualminer_chaos_{}_{name}", std::process::id()))
}

/// Shutdown snapshot + boot restore: a second server instance answers a
/// previously-cached mine as a warm hit with zero computations. A
/// corrupted snapshot cold-starts with an error counted, not a failed
/// boot.
#[test]
fn cache_persistence_survives_restart_and_detects_corruption() {
    let snap = tmp("restart");
    let _ = std::fs::remove_file(&snap);
    let persist = Some(snap.to_string_lossy().into_owned());

    // First life: compute once, snapshot on shutdown.
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        cache_persist: persist.clone(),
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let events = conn.roundtrip(&mine_line(1, BASKETS, ""), 1).expect("mine");
    let body = terminal(&events).str_field("body").unwrap().to_string();
    handle.shutdown();
    drop(conn);
    handle.join();
    assert!(snap.exists(), "shutdown must write the snapshot");

    // Second life: the hit must come from the restored cache.
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        cache_persist: persist.clone(),
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let stats = server_stats(&mut conn, 40);
    assert!(stat(&stats, "persist_restored") >= 1, "nothing restored");
    let events = conn
        .roundtrip(&mine_line(2, BASKETS, ""), 2)
        .expect("warm mine");
    let last = terminal(&events);
    assert_eq!(last.str_field("cache"), Some("hit"));
    assert_eq!(last.str_field("body"), Some(body.as_str()));
    let stats = server_stats(&mut conn, 41);
    assert_eq!(stat(&stats, "computations"), 0, "warm hit must not compute");
    assert_eq!(stat(&stats, "cache_hits"), 1);
    handle.shutdown();
    drop(conn);
    handle.join();

    // Corrupt the snapshot: boot cold with the error counted, and the
    // job computes fresh — byte-identically.
    std::fs::write(&snap, "definitely not a checkpoint").expect("corrupt");
    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        cache_persist: persist,
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    let stats = server_stats(&mut conn, 60);
    assert_eq!(stat(&stats, "persist_restored"), 0);
    assert!(stat(&stats, "persist_errors") >= 1);
    let events = conn
        .roundtrip(&mine_line(3, BASKETS, ""), 3)
        .expect("cold mine");
    let last = terminal(&events);
    assert_eq!(last.str_field("cache"), Some("miss"));
    assert_eq!(last.str_field("body"), Some(body.as_str()));
    handle.shutdown();
    drop(conn);
    handle.join();
    let _ = std::fs::remove_file(&snap);
}

/// `--cache-snapshot-every 1` snapshots after each computation, so even
/// without a clean shutdown (simulating SIGKILL) the warm cache
/// survives.
#[test]
fn periodic_snapshots_survive_unclean_death() {
    let snap = tmp("periodic");
    let _ = std::fs::remove_file(&snap);
    let persist = Some(snap.to_string_lossy().into_owned());

    let (handle, addr) = serve(ServeConfig {
        workers: 1,
        cache_persist: persist.clone(),
        cache_snapshot_every: 1,
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr).expect("connect");
    conn.roundtrip(&mine_line(1, BASKETS, ""), 1).expect("mine");
    let stats = server_stats(&mut conn, 2);
    assert!(
        stat(&stats, "persist_saves") >= 1,
        "periodic snapshot missing"
    );
    assert!(snap.exists());
    // Simulate SIGKILL: abandon the server without shutdown/join. The
    // snapshot already on disk must be complete and loadable.
    drop(conn);
    std::mem::forget(handle);

    let (handle2, addr2) = serve(ServeConfig {
        workers: 1,
        cache_persist: persist,
        ..ServeConfig::default()
    });
    let mut conn = Conn::connect(&addr2).expect("connect restarted");
    let events = conn
        .roundtrip(&mine_line(2, BASKETS, ""), 2)
        .expect("warm mine");
    assert_eq!(terminal(&events).str_field("cache"), Some("hit"));
    handle2.shutdown();
    drop(conn);
    handle2.join();
    let _ = std::fs::remove_file(&snap);
}
