//! Protocol-frame fuzz: whole wire frames — truncated JSON, palette-
//! biased garbage, interleaved valid requests — against both the parser
//! and a live server.
//!
//! Extends the arbitrary-input approach of `formats.rs`'s proptest
//! module from file payloads to protocol frames. Two properties:
//! `parse_request` never panics, and a server that just consumed an
//! arbitrary frame still answers a well-formed request *on the same
//! connection* (garbage costs the sender an error event, not the
//! connection, and never wedges the reader loop).

use std::sync::OnceLock;

use proptest::prelude::*;

use dualminer_serve::client::Conn;
use dualminer_serve::proto;
use dualminer_serve::server::{start, ServeConfig, ServerHandle};

/// The probe id: far outside anything `arb_frame` can generate (its
/// templates use ids below 100 and truncation never grows a number).
const PROBE_ID: u64 = 999_999_999;

fn server() -> &'static (ServerHandle, String) {
    static SERVER: OnceLock<(ServerHandle, String)> = OnceLock::new();
    SERVER.get_or_init(|| {
        let handle = start(&ServeConfig {
            tcp: Some("127.0.0.1:0".into()),
            workers: 2,
            cache_entries: 16,
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port");
        let addr = handle.tcp_addr.expect("tcp listener").to_string();
        (handle, addr)
    })
}

/// Well-formed frames an honest client could send (shutdown excluded —
/// the server under fuzz must stay up).
fn valid_frame(selector: u32, id: u64) -> String {
    match selector % 4 {
        0 => format!(
            r#"{{"op":"mine","id":{id},"input":{{"inline":"a b\nb c\na c\n"}},"min_support":"2"}}"#
        ),
        1 => format!(r#"{{"op":"transversals","id":{id},"input":{{"inline":"a b\nc\n"}}}}"#),
        2 => format!(r#"{{"op":"cancel","id":{id},"job":{}}}"#, id + 1),
        _ => format!(r#"{{"op":"server-stats","id":{id}}}"#),
    }
}

/// Garbage biased toward JSON/protocol structure: braces, quotes,
/// colons, protocol keywords, digits, and a sprinkling of arbitrary
/// codepoints — the shapes most likely to trip a hand-rolled parser.
/// Newlines are excluded so one generated value stays one frame.
fn garbage_frame(codes: &[u32]) -> String {
    const PALETTE: &[&str] = &[
        "{",
        "}",
        "[",
        "]",
        "\"",
        ":",
        ",",
        "op",
        "id",
        "input",
        "inline",
        "mine",
        "cancel",
        "min_support",
        "0",
        "7",
        "-1",
        "18446744073709551616",
        " ",
        "\t",
        "\\",
        "\\\"",
        "null",
        "true",
        "\u{0}",
    ];
    codes
        .iter()
        .map(|&c| {
            if (c as usize) < 4 * PALETTE.len() {
                PALETTE[c as usize % PALETTE.len()].to_string()
            } else {
                char::from_u32(c)
                    .filter(|&ch| ch != '\n' && ch != '\r')
                    .unwrap_or('\u{fffd}')
                    .to_string()
            }
        })
        .collect()
}

/// Cuts a valid frame mid-JSON at a char boundary — oversized declared
/// payloads fall out of cutting a string's closing quote off.
fn truncate_frame(frame: &str, cut_pct: u32) -> String {
    let mut cut = (frame.len() * cut_pct as usize) / 100;
    cut = cut.min(frame.len());
    while !frame.is_char_boundary(cut) {
        cut -= 1;
    }
    frame[..cut].to_string()
}

/// A whole frame: well-formed, truncated-valid, or structured garbage,
/// in roughly equal thirds.
fn arb_frame() -> impl Strategy<Value = String> {
    (
        0u32..12,
        0u64..100,
        proptest::collection::vec(0u32..2048, 0..120),
        0u32..100,
    )
        .prop_map(|(class, id, codes, cut_pct)| match class {
            0..=3 => valid_frame(class, id),
            4..=7 => truncate_frame(&valid_frame(class, id), cut_pct),
            _ => garbage_frame(&codes),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parse_request_never_panics(frame in arb_frame()) {
        let _ = proto::parse_request(&frame);
    }
}

proptest! {
    // Each case is a real TCP round trip; fewer cases keep the suite
    // fast while still covering all three frame classes many times.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn server_answers_wellformed_frames_after_arbitrary_ones(frame in arb_frame()) {
        let (_, addr) = server();
        let mut conn = Conn::connect(addr).expect("connect");
        // The arbitrary frame first. Whatever it provokes — an error
        // event, an accepted job, nothing — is drained by id-filtering
        // below; the connection itself must survive.
        conn.send_line(&frame).expect("send fuzz frame");
        let probe = format!(r#"{{"op":"server-stats","id":{PROBE_ID}}}"#);
        let events = conn.roundtrip(&probe, PROBE_ID).expect("probe answered");
        let last = events.last().expect("terminal event");
        prop_assert_eq!(last.kind.as_str(), "server-stats");
        prop_assert_eq!(last.id, PROBE_ID);
    }
}
