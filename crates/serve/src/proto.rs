//! The line-oriented JSON wire protocol of `dualminer serve`.
//!
//! One JSON object per line in each direction. Clients send requests;
//! the server answers every request with one terminal event (`result`,
//! `error`, `server-stats`, `shutdown`, or `cancelled` acknowledgement)
//! and, for jobs with `"progress": true`, any number of `progress` /
//! `note` events before it. Events carry the request's `id` so one
//! connection can keep several jobs in flight.
//!
//! The JSON dialect is the integer-only [`Json`] the checkpoint format
//! already uses — no floats on the wire. Quantities that are naturally
//! fractional (support fractions, rule confidence, timeouts) travel as
//! *strings* in the CLI's own flag syntax (`"0.5"`, `"250ms"`) and parse
//! through the same [`crate::job`] parsers as the command line, so the
//! wire accepts exactly what the flags accept. The stats artifact — whose
//! own format has floats and is produced by the write-only
//! `StatsCollector` — is embedded as an escaped JSON string field, not as
//! a nested object.

use dualminer_hypergraph::TrAlgorithm;
use dualminer_obs::{BudgetReason, FaultSpec, Json};

use crate::job::{self, RunOpts, Support};

/// A protocol-level failure: the line was not a valid request. Maps to
/// exit code 7 on the CLI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong with the request.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> ProtoError {
        ProtoError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A job input: a path the *server* reads, or the content inline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Input {
    /// Read this file server-side.
    Path(String),
    /// The input text itself.
    Inline(String),
}

impl Input {
    /// A short label for error locations: the path, or `"<inline>"`.
    pub fn label(&self) -> &str {
        match self {
            Input::Path(p) => p,
            Input::Inline(_) => "<inline>",
        }
    }
}

/// Client control over the result cache for one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Look up, and store a complete result.
    #[default]
    Normal,
    /// Neither look up nor store (benchmark cold runs).
    Bypass,
    /// Look up, but do not store.
    NoStore,
}

impl CacheMode {
    fn parse(s: &str) -> Result<CacheMode, ProtoError> {
        match s {
            "normal" => Ok(CacheMode::Normal),
            "bypass" => Ok(CacheMode::Bypass),
            "no-store" => Ok(CacheMode::NoStore),
            other => Err(ProtoError::new(format!(
                "unknown cache mode {other:?} (want normal, bypass, or no-store)"
            ))),
        }
    }
}

/// The operation a job performs, with its op-specific knobs.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Frequent-set mining (`dualminer mine`).
    Mine {
        /// Support threshold.
        min_support: Support,
        /// Association-rule confidence, if rules were requested.
        rules: Option<f64>,
        /// Emit the maximal sets + negative border block.
        maximal: bool,
        /// Vertical-store segment row cap (`--segment-rows`).
        segment_rows: usize,
    },
    /// Minimal-transversal enumeration (`dualminer transversals`).
    Transversals {
        /// Algorithm selection (`--algo`).
        algo: TrAlgorithm,
    },
    /// Key / FD discovery (`dualminer keys`).
    Keys {
        /// Also derive minimal functional dependencies.
        fds: bool,
    },
    /// Duality verification (`dualminer verify-dual`).
    VerifyDual,
}

impl OpKind {
    /// The op name as it appears on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Mine { .. } => "mine",
            OpKind::Transversals { .. } => "transversals",
            OpKind::Keys { .. } => "keys",
            OpKind::VerifyDual => "verify-dual",
        }
    }
}

/// One job request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id, echoed on every event for this job.
    pub id: u64,
    /// What to compute.
    pub op: OpKind,
    /// The input (second input for `verify-dual` in `input2`).
    pub input: Input,
    /// `verify-dual`'s second family.
    pub input2: Option<Input>,
    /// Worker threads for this job (0 = server default).
    pub threads: usize,
    /// Budgets, fault tolerance, checkpointing.
    pub run: RunOpts,
    /// Stream `progress` events while the job runs.
    pub progress: bool,
    /// Result-cache behavior.
    pub cache_mode: CacheMode,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a job.
    Job(Box<JobRequest>),
    /// Cancel a running job submitted on this connection.
    Cancel {
        /// Request id for the acknowledgement.
        id: u64,
        /// The id of the job to cancel.
        job: u64,
    },
    /// Report server counters (jobs, cache traffic, workers).
    ServerStats {
        /// Request id for the reply.
        id: u64,
    },
    /// Drain and stop the server.
    Shutdown {
        /// Request id for the acknowledgement.
        id: u64,
    },
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(other) => Err(ProtoError::new(format!(
            "field {key:?} must be a string, got {other}"
        ))),
    }
}

fn uint_field(obj: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_uint().map(Some).ok_or_else(|| {
            ProtoError::new(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(other) => Err(ProtoError::new(format!(
            "field {key:?} must be a boolean, got {other}"
        ))),
    }
}

fn input_field(obj: &Json, key: &str) -> Result<Option<Input>, ProtoError> {
    let Some(value) = obj.get(key) else {
        return Ok(None);
    };
    let bad = || {
        ProtoError::new(format!(
            "field {key:?} must be {{\"path\": …}} or {{\"inline\": …}}"
        ))
    };
    let (path, inline) = (
        str_field(value, "path").map_err(|_| bad())?,
        str_field(value, "inline").map_err(|_| bad())?,
    );
    match (path, inline, value) {
        (Some(p), None, Json::Obj(_)) => Ok(Some(Input::Path(p.to_string()))),
        (None, Some(t), Json::Obj(_)) => Ok(Some(Input::Inline(t.to_string()))),
        _ => Err(bad()),
    }
}

fn parse_run(obj: &Json) -> Result<RunOpts, ProtoError> {
    let run = match obj.get("run") {
        None | Some(Json::Null) => return Ok(RunOpts::default()),
        Some(run @ Json::Obj(_)) => run,
        Some(_) => return Err(ProtoError::new("field \"run\" must be an object")),
    };
    let mut opts = RunOpts {
        timeout: str_field(run, "timeout")?
            .map(job::parse_duration)
            .transpose()
            .map_err(ProtoError::new)?,
        max_queries: uint_field(run, "max_queries")?,
        max_transversals: uint_field(run, "max_transversals")?,
        fault_inject: str_field(run, "fault_inject")?
            .map(FaultSpec::parse)
            .transpose()
            .map_err(ProtoError::new)?,
        retry: uint_field(run, "retry")?.unwrap_or(0) as u32,
        checkpoint: str_field(run, "checkpoint")?.map(str::to_string),
        checkpoint_every: uint_field(run, "checkpoint_every")?,
        resume: bool_field(run, "resume")?,
        grain: uint_field(run, "grain")?.map(|g| g as usize),
        ..RunOpts::default()
    };
    // progress/stats_json are connection-level concerns on the wire, not
    // run options: the server always collects stats, and progress is the
    // top-level "progress" flag.
    opts.progress = false;
    opts.stats_json = false;
    job::validate_run(&opts).map_err(ProtoError::new)?;
    Ok(opts)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let obj = Json::parse(line).map_err(|e| ProtoError::new(format!("invalid JSON: {e}")))?;
    let op = str_field(&obj, "op")?.ok_or_else(|| ProtoError::new("missing \"op\""))?;
    let id = uint_field(&obj, "id")?.ok_or_else(|| ProtoError::new("missing \"id\""))?;
    match op {
        "cancel" => {
            let job = uint_field(&obj, "job")?.ok_or_else(|| ProtoError::new("missing \"job\""))?;
            return Ok(Request::Cancel { id, job });
        }
        "server-stats" => return Ok(Request::ServerStats { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        _ => {}
    }
    let op = match op {
        "mine" => OpKind::Mine {
            min_support: str_field(&obj, "min_support")?
                .ok_or_else(|| ProtoError::new("mine requires \"min_support\""))
                .and_then(|s| job::parse_support(s).map_err(ProtoError::new))?,
            rules: str_field(&obj, "rules")?
                .map(|s| match s.parse::<f64>() {
                    Ok(c) if c > 0.0 && c <= 1.0 => Ok(c),
                    _ => Err(ProtoError::new(format!(
                        "invalid rules confidence {s:?} (want fraction in (0,1])"
                    ))),
                })
                .transpose()?,
            maximal: bool_field(&obj, "maximal")?,
            segment_rows: uint_field(&obj, "segment_rows")?
                .map(|n| n as usize)
                .unwrap_or(dualminer_mining::DEFAULT_SEGMENT_ROWS)
                .max(1),
        },
        "transversals" => OpKind::Transversals {
            algo: str_field(&obj, "algo")?
                .map(job::parse_algo)
                .transpose()
                .map_err(ProtoError::new)?
                .unwrap_or(TrAlgorithm::Auto),
        },
        "keys" => OpKind::Keys {
            fds: bool_field(&obj, "fds")?,
        },
        "verify-dual" => OpKind::VerifyDual,
        other => return Err(ProtoError::new(format!("unknown op {other:?}"))),
    };
    let input = input_field(&obj, "input")?.ok_or_else(|| ProtoError::new("missing \"input\""))?;
    let input2 = input_field(&obj, "input2")?;
    match (&op, &input2) {
        (OpKind::VerifyDual, None) => {
            return Err(ProtoError::new("verify-dual requires \"input2\""))
        }
        (OpKind::VerifyDual, Some(_)) => {}
        (_, Some(_)) => return Err(ProtoError::new("\"input2\" is only valid for verify-dual")),
        (_, None) => {}
    }
    Ok(Request::Job(Box::new(JobRequest {
        id,
        op,
        input,
        input2,
        threads: uint_field(&obj, "threads")?
            .map(|n| n as usize)
            .unwrap_or(0),
        run: parse_run(&obj)?,
        progress: bool_field(&obj, "progress")?,
        cache_mode: str_field(&obj, "cache")?
            .map(CacheMode::parse)
            .transpose()?
            .unwrap_or_default(),
    })))
}

// ---------------------------------------------------------------------------
// Params fingerprint
// ---------------------------------------------------------------------------

impl JobRequest {
    /// The params fingerprint: a digest of every request field that can
    /// influence the rendered body or the replayed stats artifact — the
    /// operation and its knobs, the thread count, and the full run tier.
    /// Deliberately *excludes* the input (that is the content
    /// fingerprint's half of the key), the client id, and the delivery
    /// flags (`progress`, `cache`), which change what is streamed but
    /// never what is computed.
    pub fn params_fingerprint(&self) -> u64 {
        let mut h = dualminer_obs::FnvStream::new();
        let tag = |h: &mut dualminer_obs::FnvStream, s: &str| {
            h.update_u64(s.len() as u64);
            h.update(s.as_bytes());
        };
        tag(&mut h, self.op.name());
        match &self.op {
            OpKind::Mine {
                min_support,
                rules,
                maximal,
                segment_rows,
            } => {
                match min_support {
                    Support::Absolute(n) => {
                        h.update(b"abs");
                        h.update_u64(*n as u64);
                    }
                    Support::Relative(f) => {
                        h.update(b"rel");
                        h.update_u64(f.to_bits());
                    }
                }
                match rules {
                    Some(c) => {
                        h.update(b"rules");
                        h.update_u64(c.to_bits());
                    }
                    None => h.update(b"norules"),
                }
                h.update(&[u8::from(*maximal)]);
                h.update_u64(*segment_rows as u64);
            }
            OpKind::Transversals { algo } => tag(&mut h, plan_algo_tag(*algo)),
            OpKind::Keys { fds } => h.update(&[u8::from(*fds)]),
            OpKind::VerifyDual => {}
        }
        h.update_u64(self.threads as u64);
        let run = &self.run;
        h.update_u64(run.timeout.map_or(u64::MAX, |d| d.as_nanos() as u64));
        h.update_u64(run.max_queries.unwrap_or(u64::MAX));
        h.update_u64(run.max_transversals.unwrap_or(u64::MAX));
        match &run.fault_inject {
            Some(spec) => tag(&mut h, &format!("{spec:?}")),
            None => h.update(b"nofault"),
        }
        h.update_u64(u64::from(run.retry));
        match &run.checkpoint {
            Some(path) => tag(&mut h, path),
            None => h.update(b"nockpt"),
        }
        h.update_u64(run.checkpoint_every.unwrap_or(0));
        h.update(&[u8::from(run.resume)]);
        h.update_u64(run.grain.map_or(u64::MAX, |g| g as u64));
        h.digest()
    }
}

fn plan_algo_tag(algo: TrAlgorithm) -> &'static str {
    match algo {
        TrAlgorithm::Auto => "auto",
        TrAlgorithm::Berge => "berge",
        TrAlgorithm::FkJointGeneration => "fk",
        TrAlgorithm::LevelwiseLargeEdges => "levelwise",
        TrAlgorithm::Mmcs => "mmcs",
        TrAlgorithm::MuMmcs => "mu-mmcs",
        TrAlgorithm::Egm => "egm",
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Renders the composite fingerprint stamped on `accepted`/`result`
/// events: `"{params:016x}-{content:016x}"`.
pub fn fingerprint_str(params: u64, content: u64) -> String {
    format!("{params:016x}-{content:016x}")
}

fn event(kind: &str, id: u64) -> Vec<(String, Json)> {
    vec![
        ("event".into(), Json::str(kind)),
        ("id".into(), Json::uint(id)),
    ]
}

/// `accepted`: the job was admitted, with its composite fingerprint.
pub fn ev_accepted(id: u64, fingerprint: &str) -> String {
    let mut f = event("accepted", id);
    f.push(("fingerprint".into(), Json::str(fingerprint)));
    Json::Obj(f).serialize()
}

/// `progress`: one observer narration line (same text the CLI prints to
/// stderr under `--progress`).
pub fn ev_progress(id: u64, text: &str) -> String {
    let mut f = event("progress", id);
    f.push(("text".into(), Json::str(text)));
    Json::Obj(f).serialize()
}

/// `note`: out-of-band narration (engine choice, checkpoint-resume notes)
/// the CLI prints as `note: …` on stderr.
pub fn ev_note(id: u64, text: &str) -> String {
    let mut f = event("note", id);
    f.push(("text".into(), Json::str(text)));
    Json::Obj(f).serialize()
}

/// How a result was obtained, stamped on every `result` event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTag {
    /// Computed fresh (cache missed or was bypassed).
    Miss,
    /// Served from the cache without running any engine.
    Hit,
    /// Re-mined incrementally on top of a cached prefix.
    Incremental,
    /// Another in-flight job with the same fingerprint computed it; this
    /// request waited and shared the result.
    Coalesced,
}

impl CacheTag {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTag::Miss => "miss",
            CacheTag::Hit => "hit",
            CacheTag::Incremental => "incremental",
            CacheTag::Coalesced => "coalesced",
        }
    }
}

/// `result`: the terminal success event. `outcome` is `"complete"` or
/// `"budget:<reason>"`; `exit` is the code the one-shot CLI would have
/// exited with (0, 1 for not-dual, 6 for budget-tripped); `body` is the
/// byte-exact stdout of the equivalent one-shot run and `stats` its
/// stats-JSON artifact, both as embedded strings.
#[allow(clippy::too_many_arguments)]
pub fn ev_result(
    id: u64,
    cache: CacheTag,
    reason: Option<BudgetReason>,
    exit: i32,
    fingerprint: &str,
    body: &str,
    stats: &str,
) -> String {
    let mut f = event("result", id);
    f.push(("cache".into(), Json::str(cache.as_str())));
    let outcome = match reason {
        None => "complete".to_string(),
        Some(r) => format!("budget:{}", r.as_str()),
    };
    f.push(("outcome".into(), Json::str(outcome)));
    f.push(("exit".into(), Json::Int(i64::from(exit))));
    f.push(("fingerprint".into(), Json::str(fingerprint)));
    f.push(("body".into(), Json::str(body)));
    f.push(("stats".into(), Json::str(stats)));
    Json::Obj(f).serialize()
}

/// `error`: the terminal failure event, carrying the CLI exit code
/// (2 usage, 3 parse, 4 I/O, 5 fault, 7 protocol).
pub fn ev_error(id: u64, code: i32, message: &str) -> String {
    ev_error_typed(id, code, None, None, message)
}

/// `error` with an optional machine-readable `kind` discriminator
/// (`"overloaded"`, `"too_large"`) and, for `overloaded`, the server's
/// `retry_after_ms` backoff hint. Plain errors omit both fields, so the
/// wire shape of pre-existing errors is unchanged.
pub fn ev_error_typed(
    id: u64,
    code: i32,
    kind: Option<&str>,
    retry_after_ms: Option<u64>,
    message: &str,
) -> String {
    let mut f = event("error", id);
    f.push(("code".into(), Json::Int(i64::from(code))));
    if let Some(kind) = kind {
        f.push(("kind".into(), Json::str(kind)));
    }
    if let Some(ms) = retry_after_ms {
        f.push(("retry_after_ms".into(), Json::uint(ms)));
    }
    f.push(("message".into(), Json::str(message)));
    Json::Obj(f).serialize()
}

/// `error` of kind `overloaded`: the job was shed at admission (queue or
/// per-connection limit). Exit code 7 — the service, not the job, failed
/// — with a deterministic `retry_after_ms` hint sized to the backlog.
pub fn ev_overloaded(id: u64, retry_after_ms: u64, message: &str) -> String {
    ev_error_typed(id, 7, Some("overloaded"), Some(retry_after_ms), message)
}

/// `error` of kind `too_large`: the frame or input exceeded an admission
/// limit. Exit code 3 (the input was rejected, like a parse failure),
/// emitted before any canonicalization work.
pub fn ev_too_large(id: u64, message: &str) -> String {
    ev_error_typed(id, 3, Some("too_large"), None, message)
}

/// `cancelled`: acknowledgement of a `cancel` request. `found` says
/// whether the job was still running on this connection.
pub fn ev_cancelled(id: u64, job: u64, found: bool) -> String {
    let mut f = event("cancelled", id);
    f.push(("job".into(), Json::uint(job)));
    f.push(("found".into(), Json::Bool(found)));
    Json::Obj(f).serialize()
}

/// `shutdown`: acknowledgement that the server is draining and will close.
pub fn ev_shutdown(id: u64) -> String {
    Json::Obj(event("shutdown", id)).serialize()
}

/// Server-level counters reported by `server-stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Jobs accepted.
    pub jobs: u64,
    /// Jobs that ran an engine (misses + incremental).
    pub computations: u64,
    /// Results served from the cache.
    pub hits: u64,
    /// Requests coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs served via incremental re-mining.
    pub incremental: u64,
    /// Jobs that ended in an `error` event.
    pub errors: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Workers currently running a job (gauge; 0 when idle).
    pub busy_workers: u64,
    /// Connections currently open (gauge).
    pub open_conns: u64,
    /// Jobs shed at admission because the queue was full.
    pub shed_queue_full: u64,
    /// Jobs shed at admission by the per-connection in-flight limit.
    pub shed_conn_limit: u64,
    /// Jobs whose deadline expired while queued (dropped before any
    /// engine work).
    pub shed_deadline: u64,
    /// Jobs whose budget was adjusted by `--default-timeout` /
    /// `--max-timeout`.
    pub deadline_clamped: u64,
    /// Frames or inputs rejected by an admission size limit.
    pub too_large: u64,
    /// Event writes abandoned because a client stalled past the write
    /// deadline.
    pub write_timeouts: u64,
    /// Cache snapshots written successfully.
    pub persist_saves: u64,
    /// Cache entries restored from a snapshot at boot.
    pub persist_restored: u64,
    /// Snapshot save/load failures (corrupt file, I/O).
    pub persist_errors: u64,
    /// Cache entries resident.
    pub cache_entries: u64,
    /// Cache evictions so far.
    pub cache_evictions: u64,
}

/// `server-stats`: the counters reply.
pub fn ev_server_stats(id: u64, c: &ServerCounters) -> String {
    let mut f = event("server-stats", id);
    for (key, value) in [
        ("jobs", c.jobs),
        ("computations", c.computations),
        ("cache_hits", c.hits),
        ("coalesced", c.coalesced),
        ("incremental", c.incremental),
        ("errors", c.errors),
        ("workers", c.workers),
        ("busy_workers", c.busy_workers),
        ("open_conns", c.open_conns),
        ("shed_queue_full", c.shed_queue_full),
        ("shed_conn_limit", c.shed_conn_limit),
        ("shed_deadline", c.shed_deadline),
        ("deadline_clamped", c.deadline_clamped),
        ("too_large", c.too_large),
        ("write_timeouts", c.write_timeouts),
        ("persist_saves", c.persist_saves),
        ("persist_restored", c.persist_restored),
        ("persist_errors", c.persist_errors),
        ("cache_entries", c.cache_entries),
        ("cache_evictions", c.cache_evictions),
    ] {
        f.push((key.into(), Json::uint(value)));
    }
    Json::Obj(f).serialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn parses_a_minimal_mine_request() {
        let req = parse_request(
            r#"{"op":"mine","id":1,"input":{"inline":"a b\nb c\n"},"min_support":"2"}"#,
        )
        .unwrap();
        let Request::Job(job) = req else {
            panic!("expected job")
        };
        assert_eq!(job.id, 1);
        assert_eq!(job.input, Input::Inline("a b\nb c\n".into()));
        assert_eq!(job.cache_mode, CacheMode::Normal);
        assert!(!job.progress);
        let OpKind::Mine {
            min_support,
            rules,
            maximal,
            ..
        } = job.op
        else {
            panic!("expected mine")
        };
        assert_eq!(min_support, Support::Absolute(2));
        assert_eq!(rules, None);
        assert!(!maximal);
    }

    #[test]
    fn parses_run_options_and_control_ops() {
        let req = parse_request(
            r#"{"op":"transversals","id":9,"input":{"path":"h.txt"},"algo":"mmcs",
                "threads":2,"progress":true,"cache":"bypass",
                "run":{"timeout":"250ms","max_transversals":10}}"#,
        )
        .unwrap();
        let Request::Job(job) = req else {
            panic!("expected job")
        };
        assert_eq!(job.threads, 2);
        assert!(job.progress);
        assert_eq!(job.cache_mode, CacheMode::Bypass);
        assert_eq!(job.run.timeout, Some(Duration::from_millis(250)));
        assert_eq!(job.run.max_transversals, Some(10));
        assert_eq!(
            job.op,
            OpKind::Transversals {
                algo: TrAlgorithm::Mmcs
            }
        );

        assert_eq!(
            parse_request(r#"{"op":"cancel","id":3,"job":1}"#).unwrap(),
            Request::Cancel { id: 3, job: 1 }
        );
        assert_eq!(
            parse_request(r#"{"op":"server-stats","id":4}"#).unwrap(),
            Request::ServerStats { id: 4 }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":5}"#).unwrap(),
            Request::Shutdown { id: 5 }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, want) in [
            ("nonsense", "invalid JSON"),
            (r#"{"id":1}"#, "missing \"op\""),
            (r#"{"op":"mine","input":{"path":"x"}}"#, "missing \"id\""),
            (
                r#"{"op":"mine","id":1,"min_support":"2"}"#,
                "missing \"input\"",
            ),
            (
                r#"{"op":"mine","id":1,"input":{"path":"x"}}"#,
                "min_support",
            ),
            (r#"{"op":"warp","id":1,"input":{"path":"x"}}"#, "unknown op"),
            (
                r#"{"op":"verify-dual","id":1,"input":{"path":"f"}}"#,
                "input2",
            ),
            (
                r#"{"op":"keys","id":1,"input":{"path":"r"},"input2":{"path":"g"}}"#,
                "only valid for verify-dual",
            ),
            (
                r#"{"op":"mine","id":1,"input":{"path":"x"},"min_support":"2","cache":"warm"}"#,
                "unknown cache mode",
            ),
            (
                r#"{"op":"mine","id":1,"input":{"path":"x"},"min_support":"2","run":{"resume":true}}"#,
                "--resume requires --checkpoint",
            ),
            (
                r#"{"op":"mine","id":1,"input":"x","min_support":"2"}"#,
                "\"path\"",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.message.contains(want), "{line} → {err}");
        }
    }

    #[test]
    fn params_fingerprints_separate_job_shapes() {
        let base =
            parse_request(r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"2"}"#)
                .unwrap();
        let Request::Job(base) = base else { panic!() };
        let fp = |line: &str| {
            let Request::Job(j) = parse_request(line).unwrap() else {
                panic!()
            };
            j.params_fingerprint()
        };
        let base_fp = base.params_fingerprint();
        // Same shape, different id / input / delivery flags: equal.
        assert_eq!(
            base_fp,
            fp(
                r#"{"op":"mine","id":77,"input":{"inline":"zz\n"},"min_support":"2","progress":true,"cache":"no-store"}"#
            )
        );
        // Any output-relevant knob: different.
        for other in [
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"3"}"#,
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"0.5"}"#,
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"2","maximal":true}"#,
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"2","rules":"0.5"}"#,
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"2","threads":2}"#,
            r#"{"op":"mine","id":1,"input":{"inline":"a b\n"},"min_support":"2","run":{"max_queries":5}}"#,
            r#"{"op":"transversals","id":1,"input":{"inline":"a b\n"}}"#,
        ] {
            assert_ne!(base_fp, fp(other), "{other}");
        }
        // Absolute 1 vs relative 1.0 are different specs even when they
        // resolve identically on some databases.
        assert_ne!(
            fp(r#"{"op":"mine","id":1,"input":{"inline":"a\n"},"min_support":"1"}"#),
            fp(r#"{"op":"mine","id":1,"input":{"inline":"a\n"},"min_support":"1.0"}"#)
        );
    }

    #[test]
    fn events_render_and_round_trip() {
        let line = ev_result(
            4,
            CacheTag::Hit,
            None,
            0,
            "00ff-aa11",
            "body line\n",
            r#"{"queries":3}"#,
        );
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("result"));
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some("complete")
        );
        assert_eq!(
            parsed.get("body").and_then(Json::as_str),
            Some("body line\n")
        );
        // The embedded stats string parses as JSON itself.
        let stats = parsed.get("stats").and_then(Json::as_str).unwrap();
        assert!(Json::parse(stats).is_ok());

        let line = ev_result(
            5,
            CacheTag::Miss,
            Some(BudgetReason::MaxQueries),
            6,
            "00-00",
            "",
            "{}",
        );
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some("budget:max_queries")
        );
        assert_eq!(parsed.get("exit").and_then(Json::as_int), Some(6));

        let err = Json::parse(&ev_error(1, 7, "bad line")).unwrap();
        assert_eq!(err.get("code").and_then(Json::as_int), Some(7));
        let acc = Json::parse(&ev_accepted(2, &fingerprint_str(1, 2))).unwrap();
        assert_eq!(
            acc.get("fingerprint").and_then(Json::as_str),
            Some("0000000000000001-0000000000000002")
        );
        let st = Json::parse(&ev_server_stats(3, &ServerCounters::default())).unwrap();
        assert_eq!(st.get("jobs").and_then(Json::as_uint), Some(0));
        assert_eq!(st.get("shed_queue_full").and_then(Json::as_uint), Some(0));
        assert_eq!(st.get("persist_restored").and_then(Json::as_uint), Some(0));
    }

    #[test]
    fn typed_errors_carry_kind_and_hint() {
        let ov = Json::parse(&ev_overloaded(9, 125, "queue full")).unwrap();
        assert_eq!(ov.get("event").and_then(Json::as_str), Some("error"));
        assert_eq!(ov.get("code").and_then(Json::as_int), Some(7));
        assert_eq!(ov.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(ov.get("retry_after_ms").and_then(Json::as_uint), Some(125));

        let tl = Json::parse(&ev_too_large(4, "too many rows")).unwrap();
        assert_eq!(tl.get("code").and_then(Json::as_int), Some(3));
        assert_eq!(tl.get("kind").and_then(Json::as_str), Some("too_large"));
        assert!(tl.get("retry_after_ms").is_none());

        // Plain errors keep the historical shape: no kind, no hint.
        let plain = Json::parse(&ev_error(1, 7, "bad line")).unwrap();
        assert!(plain.get("kind").is_none());
        assert!(plain.get("retry_after_ms").is_none());
    }
}
