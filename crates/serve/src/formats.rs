//! Input-file parsers: baskets, CSV relations, hypergraphs.
//!
//! The high-volume formats (baskets, CSV relations) parse from any
//! [`BufRead`] source one line at a time — basket rows stream straight
//! into a segmented [`VStoreBuilder`], so a database larger than memory
//! would ever hold as text materializes only its compact vertical form.
//! The `&str` entry points are thin [`Cursor`] wrappers kept for tests
//! and small inputs.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Cursor};

use dualminer_bitset::{AttrSet, Universe};
use dualminer_episodes::EventSequence;
use dualminer_fdep::Relation;
use dualminer_hypergraph::Hypergraph;
use dualminer_mining::{TransactionDb, VStoreBuilder, DEFAULT_SEGMENT_ROWS};

/// A typed input-file parse error: what went wrong and where.
///
/// The parsers see only text, so `file` starts empty and the CLI layer
/// attaches it with [`FormatError::in_file`]. Line numbers count *physical*
/// lines of the input (1-based), comments and blanks included, so the
/// reported location matches what an editor shows. Renders as the
/// conventional `file:line:column: message`, dropping whichever location
/// parts are unknown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormatError {
    /// Input file, once attached by the caller.
    pub file: Option<String>,
    /// 1-based physical line of the offending input, when known.
    pub line: Option<usize>,
    /// 1-based column of the offending token, when known.
    pub column: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl FormatError {
    pub(crate) fn new(message: impl Into<String>) -> FormatError {
        FormatError {
            file: None,
            line: None,
            column: None,
            message: message.into(),
        }
    }

    fn at_line(line: usize, message: impl Into<String>) -> FormatError {
        FormatError {
            line: Some(line),
            ..FormatError::new(message)
        }
    }

    fn at(line: usize, column: usize, message: impl Into<String>) -> FormatError {
        FormatError {
            line: Some(line),
            column: Some(column),
            ..FormatError::new(message)
        }
    }

    /// Attaches the source file name for `file:line:column` rendering.
    #[must_use]
    pub fn in_file(mut self, path: &str) -> FormatError {
        self.file = Some(path.to_string());
        self
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
        }
        if let Some(line) = self.line {
            write!(f, "{line}:")?;
            if let Some(column) = self.column {
                write!(f, "{column}:")?;
            }
        }
        if self.file.is_some() || self.line.is_some() {
            write!(f, " ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FormatError {}

/// Parses a basket file: one transaction per line, whitespace-separated
/// item names; `#` starts a comment; blank lines are empty transactions
/// and are skipped. Item indices are assigned in order of first
/// appearance.
///
/// Thin wrapper over [`parse_baskets_reader`] at the default segment
/// size. The CLI itself always streams from the file; the daemon parses
/// in-memory request payloads through here.
pub fn parse_baskets(text: &str) -> Result<(Universe, TransactionDb), FormatError> {
    parse_baskets_reader(Cursor::new(text), DEFAULT_SEGMENT_ROWS)
}

/// Streaming [`parse_baskets`]: reads transactions line by line from any
/// [`BufRead`] source, pushing each row into a [`VStoreBuilder`] with row
/// segments capped at `segment_rows`. Only the dictionary and the compact
/// vertical segments are ever resident — neither the input text nor an
/// index-row copy of the database is materialized, so this is the
/// out-of-core ingestion path (`--segment-rows` on the CLI).
///
/// I/O failures (including invalid UTF-8) surface as a [`FormatError`] at
/// the offending physical line.
pub fn parse_baskets_reader(
    reader: impl BufRead,
    segment_rows: usize,
) -> Result<(Universe, TransactionDb), FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut builder = VStoreBuilder::new(segment_rows);
    let mut row: Vec<usize> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line =
            line.map_err(|e| FormatError::at_line(lineno + 1, format!("read error: {e}")))?;
        let line = strip_comment(&line);
        row.clear();
        for item in line.split_whitespace() {
            let id = *index.entry(item.to_string()).or_insert_with(|| {
                names.push(item.to_string());
                names.len() - 1
            });
            row.push(id);
        }
        if row.is_empty() {
            continue;
        }
        builder.push_row(row.iter().copied());
    }
    if builder.n_rows() == 0 {
        return Err(FormatError::new("no transactions found"));
    }
    let universe = Universe::new(names);
    let db = TransactionDb::from_vstore(builder.finish());
    Ok((universe, db))
}

/// Parses a CSV relation: first line is the header of attribute names,
/// remaining lines are comma-separated values (treated as opaque strings,
/// dictionary-coded per column). Unlike the whitespace formats, `#` only
/// introduces a comment when it starts a line — data cells may
/// legitimately contain `#` (part numbers, anchors, …), so inline
/// stripping would silently corrupt them.
pub fn parse_relation(text: &str) -> Result<(Universe, Relation), FormatError> {
    parse_relation_reader(Cursor::new(text))
}

/// Streaming [`parse_relation`]: reads the CSV from any [`BufRead`]
/// source one line at a time, dictionary-coding cells as they arrive, so
/// only the coded rows and per-column dictionaries are resident. I/O
/// failures (including invalid UTF-8) surface as a [`FormatError`] at the
/// offending physical line.
pub fn parse_relation_reader(reader: impl BufRead) -> Result<(Universe, Relation), FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut dictionaries: Vec<HashMap<String, u32>> = Vec::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| FormatError::at_line(lineno, format!("read error: {e}")))?;
        let line = strip_whole_line_comment(&line);
        if line.trim().is_empty() {
            continue;
        }
        if names.is_empty() {
            // First data line is the header.
            names = line.split(',').map(|s| s.trim().to_string()).collect();
            if names.iter().any(String::is_empty) {
                return Err(FormatError::at_line(lineno, "invalid header row"));
            }
            dictionaries = vec![HashMap::new(); names.len()];
            continue;
        }
        let n = names.len();
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != n {
            return Err(FormatError::at_line(
                lineno,
                format!("row has {} cells, expected {}", cells.len(), n),
            ));
        }
        let row = cells
            .iter()
            .enumerate()
            .map(|(col, cell)| {
                let dict = &mut dictionaries[col];
                let next = dict.len() as u32;
                *dict.entry(cell.to_string()).or_insert(next)
            })
            .collect();
        rows.push(row);
    }
    if names.is_empty() {
        return Err(FormatError::new("empty relation file"));
    }
    let n = names.len();
    Ok((Universe::new(names), Relation::new(n, rows)))
}

/// Parses a hypergraph file: one edge per line, whitespace-separated
/// vertex names; vertex indices assigned in order of first appearance.
pub fn parse_hypergraph(text: &str) -> Result<(Universe, Hypergraph), FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let raw_edges = parse_hypergraph_raw(text, &mut names, &mut index)?;
    let n = names.len();
    let universe = Universe::new(names);
    let h = hypergraph_from_raw(n, raw_edges)?;
    Ok((universe, h))
}

/// Streams one hypergraph file's edges into a *shared* vertex dictionary.
///
/// Building block for `verify-dual`, which must compare two files over one
/// merged universe: call this once per file with the same `names`/`index`
/// pair, then materialize each edge list with [`hypergraph_from_raw`] at
/// the final dictionary size. Indices are assigned in order of first
/// appearance across all calls.
pub fn parse_hypergraph_raw(
    text: &str,
    names: &mut Vec<String>,
    index: &mut HashMap<String, usize>,
) -> Result<Vec<Vec<usize>>, FormatError> {
    let mut raw_edges: Vec<Vec<usize>> = Vec::new();
    for line in text.lines() {
        let line = strip_comment(line);
        let verts: Vec<&str> = line.split_whitespace().collect();
        if verts.is_empty() {
            continue;
        }
        let mut edge = Vec::with_capacity(verts.len());
        for v in verts {
            let id = *index.entry(v.to_string()).or_insert_with(|| {
                names.push(v.to_string());
                names.len() - 1
            });
            edge.push(id);
        }
        raw_edges.push(edge);
    }
    if raw_edges.is_empty() {
        return Err(FormatError::new("no edges found"));
    }
    Ok(raw_edges)
}

/// Materializes raw index edges (from [`parse_hypergraph_raw`]) as a
/// [`Hypergraph`] over a universe of `n` vertices.
pub fn hypergraph_from_raw(
    n: usize,
    raw_edges: Vec<Vec<usize>>,
) -> Result<Hypergraph, FormatError> {
    let edges = raw_edges
        .into_iter()
        .map(|e| AttrSet::from_indices(n, e))
        .collect();
    Hypergraph::from_edges(n, edges).map_err(|e| FormatError::new(e.to_string()))
}

/// Parses an event file: one event per line as `<time> <type-name>`;
/// comments/blank lines as elsewhere. Event-type indices are assigned in
/// order of first appearance.
pub fn parse_events(text: &str) -> Result<(Vec<String>, EventSequence), FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut pairs: Vec<(u64, usize)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(line);
        let mut parts = line.split_whitespace();
        let Some(time) = parts.next() else { continue };
        let kind = parts
            .next()
            .ok_or_else(|| FormatError::at_line(lineno, "expected `<time> <type>`"))?;
        if parts.next().is_some() {
            return Err(FormatError::at_line(lineno, "too many fields"));
        }
        // The time token is the first on the line, so its column is the
        // leading whitespace width plus one.
        let column = line.len() - line.trim_start().len() + 1;
        let time: u64 = time
            .parse()
            .map_err(|_| FormatError::at(lineno, column, format!("invalid time {time:?}")))?;
        let id = *index.entry(kind.to_string()).or_insert_with(|| {
            names.push(kind.to_string());
            names.len() - 1
        });
        pairs.push((time, id));
    }
    if pairs.is_empty() {
        return Err(FormatError::new("no events found"));
    }
    let alphabet = names.len();
    Ok((names, EventSequence::from_pairs(alphabet, pairs)))
}

pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Blanks the line only when its first non-whitespace character is `#`;
/// used by CSV parsing, where `#` inside a cell is data.
fn strip_whole_line_comment(line: &str) -> &str {
    if line.trim_start().starts_with('#') {
        ""
    } else {
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baskets_basic() {
        let (u, db) = parse_baskets("milk bread\nbread butter # breakfast\n\nmilk\n").unwrap();
        assert_eq!(u.size(), 3);
        assert_eq!(db.n_rows(), 3);
        assert_eq!(u.index_of("butter"), Some(2));
        assert_eq!(db.support(&AttrSet::from_indices(3, [1])), 2); // bread
    }

    #[test]
    fn baskets_empty_file_rejected() {
        assert!(parse_baskets("# only comments\n").is_err());
    }

    #[test]
    fn baskets_reader_matches_text_at_every_segment_size() {
        let text = "milk bread\nbread butter # breakfast\n\nmilk\nbutter eggs milk\n";
        let (u_ref, db_ref) = parse_baskets(text).unwrap();
        for segment_rows in [1, 2, 3, 4, 1024] {
            let (u, db) = parse_baskets_reader(Cursor::new(text), segment_rows).unwrap();
            assert_eq!(u.size(), u_ref.size(), "segment_rows={segment_rows}");
            for i in 0..u.size() {
                assert_eq!(u.name(i), u_ref.name(i));
            }
            assert_eq!(db.n_items(), db_ref.n_items());
            assert_eq!(db.n_rows(), db_ref.n_rows());
            assert_eq!(db.rows(), db_ref.rows(), "segment_rows={segment_rows}");
        }
    }

    #[test]
    fn reader_io_errors_are_format_errors() {
        // Invalid UTF-8 on physical line 2 surfaces as a located
        // FormatError, not a panic or a silent truncation.
        let bytes: &[u8] = b"milk bread\n\xff\xfe\n";
        let err = parse_baskets_reader(Cursor::new(bytes), 4).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("read error"), "{err}");

        let csv: &[u8] = b"a,b\n\xff,2\n";
        let err = parse_relation_reader(Cursor::new(csv)).unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn relation_reader_matches_text() {
        let csv = "dept,role\nsales,mgr\n# note\nsales,ic\neng,ic\n";
        let (u_ref, rel_ref) = parse_relation(csv).unwrap();
        let (u, rel) = parse_relation_reader(Cursor::new(csv)).unwrap();
        assert_eq!(u.size(), u_ref.size());
        for i in 0..u.size() {
            assert_eq!(u.name(i), u_ref.name(i));
        }
        assert_eq!(rel.rows(), rel_ref.rows());
    }

    #[test]
    fn relation_basic() {
        let csv = "dept,role\nsales,mgr\nsales,ic\neng,ic\n";
        let (u, rel) = parse_relation(csv).unwrap();
        assert_eq!(u.size(), 2);
        assert_eq!(rel.n_rows(), 3);
        // dept column: sales=0, eng=1.
        assert_eq!(rel.rows()[0][0], rel.rows()[1][0]);
        assert_ne!(rel.rows()[0][0], rel.rows()[2][0]);
    }

    #[test]
    fn relation_hash_in_cell_is_data() {
        // Regression: a `#` inside a CSV cell used to be treated as an
        // inline comment, truncating the row to a ragged (or silently
        // wrong) record. Only a line-leading `#` marks a comment now.
        let csv = "part,bin\nA#1,top\nA#2,bin#4\n# a whole-line comment\nA#1,top\n";
        let (u, rel) = parse_relation(csv).unwrap();
        assert_eq!(u.size(), 2);
        assert_eq!(rel.n_rows(), 3);
        // `A#1` rows dictionary-code identically; `A#2` differs.
        assert_eq!(rel.rows()[0][0], rel.rows()[2][0]);
        assert_ne!(rel.rows()[0][0], rel.rows()[1][0]);
        // `bin#4` survives intact as a distinct value in column 1.
        assert_ne!(rel.rows()[1][1], rel.rows()[0][1]);
    }

    #[test]
    fn relation_ragged_rejected() {
        assert!(parse_relation("a,b\n1\n").is_err());
        assert!(parse_relation("").is_err());
    }

    #[test]
    fn hypergraph_basic() {
        let (u, h) = parse_hypergraph("x y\ny z\n# comment\nx z\n").unwrap();
        assert_eq!(u.size(), 3);
        assert_eq!(h.len(), 3);
        assert!(h.is_simple());
    }

    #[test]
    fn events_basic() {
        let (names, seq) = parse_events("0 login\n1 search\n2 login # again\n").unwrap();
        assert_eq!(names, vec!["login", "search"]);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.alphabet(), 2);
    }

    #[test]
    fn events_errors() {
        assert!(parse_events("").is_err());
        assert!(parse_events("x login\n").is_err());
        assert!(parse_events("1 a b\n").is_err());
        assert!(parse_events("1\n").is_err());
    }

    #[test]
    fn errors_carry_locations() {
        // Ragged CSV row: physical line number, comments/blanks included.
        let err = parse_relation("a,b\n# note\n\n1,2\n3\n").unwrap_err();
        assert_eq!(err.line, Some(5));
        assert_eq!(err.column, None);
        assert_eq!(err.to_string(), "5: row has 1 cells, expected 2");
        assert_eq!(
            err.in_file("r.csv").to_string(),
            "r.csv:5: row has 1 cells, expected 2"
        );

        // Bad event time: line and column of the offending token.
        let err = parse_events("0 login\n  zz search\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(3)));
        assert_eq!(
            err.clone().in_file("e.txt").to_string(),
            "e.txt:2:3: invalid time \"zz\""
        );

        // Whole-file errors render with no location prefix.
        let err = parse_baskets("# empty\n").unwrap_err();
        assert_eq!((err.line, err.column), (None, None));
        assert_eq!(err.to_string(), "no transactions found");
    }

    #[test]
    fn comment_stripping() {
        assert_eq!(strip_comment("a b # c"), "a b ");
        assert_eq!(strip_comment("plain"), "plain");
    }
}

/// Never-panic property tests: every parser must return `Ok` or a typed
/// [`FormatError`] on *arbitrary* input — panics are format bugs.
#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary text biased toward the parsers' own structure: format
    /// delimiters, comments, digits, and a sprinkling of arbitrary
    /// codepoints (including NUL and multi-byte characters).
    fn arb_text() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u32..4096, 0..160).prop_map(|codes| {
            const PALETTE: &[char] = &[
                ' ', '\t', '\n', ',', '#', '0', '1', '9', '.', '-', 'a', 'Z', '_', '"',
            ];
            codes
                .into_iter()
                .map(|c| {
                    if (c as usize) < 4 * PALETTE.len() {
                        PALETTE[c as usize % PALETTE.len()]
                    } else {
                        char::from_u32(c).unwrap_or('\u{fffd}')
                    }
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn parse_baskets_never_panics(text in arb_text()) {
            let _ = parse_baskets(&text);
        }

        #[test]
        fn parse_relation_never_panics(text in arb_text()) {
            let _ = parse_relation(&text);
        }

        /// The reader paths agree with the text paths on every input —
        /// same parse, same error — at any segment size, and never panic
        /// (the text functions are wrappers, but this pins the
        /// equivalence for arbitrary `segment_rows` too).
        #[test]
        fn parse_baskets_reader_equals_text(
            text in arb_text(),
            segment_rows in 1usize..6,
        ) {
            let by_text = parse_baskets(&text);
            let by_reader =
                parse_baskets_reader(Cursor::new(text.as_str()), segment_rows);
            match (by_text, by_reader) {
                (Ok((u1, db1)), Ok((u2, db2))) => {
                    prop_assert_eq!(u1.size(), u2.size());
                    for i in 0..u1.size() {
                        prop_assert_eq!(u1.name(i), u2.name(i));
                    }
                    prop_assert_eq!(db1.rows(), db2.rows());
                }
                (Err(_), Err(_)) => {}
                (a, b) => {
                    prop_assert!(false, "text {:?} vs reader {:?}",
                        a.map(|_| ()), b.map(|_| ()));
                }
            }
        }

        #[test]
        fn parse_relation_reader_never_panics_and_equals_text(text in arb_text()) {
            let by_text = parse_relation(&text);
            let by_reader = parse_relation_reader(Cursor::new(text.as_str()));
            match (by_text, by_reader) {
                (Ok((u1, r1)), Ok((u2, r2))) => {
                    prop_assert_eq!(u1.size(), u2.size());
                    for i in 0..u1.size() {
                        prop_assert_eq!(u1.name(i), u2.name(i));
                    }
                    prop_assert_eq!(r1.rows(), r2.rows());
                }
                (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                (a, b) => {
                    prop_assert!(false, "text {:?} vs reader {:?}",
                        a.map(|_| ()), b.map(|_| ()));
                }
            }
        }

        #[test]
        fn parse_hypergraph_never_panics(text in arb_text()) {
            let _ = parse_hypergraph(&text);
        }

        #[test]
        fn parse_events_never_panics(text in arb_text()) {
            if let Err(e) = parse_events(&text) {
                // Locations, when present, are 1-based.
                prop_assert!(e.line.is_none_or(|l| l >= 1));
                prop_assert!(e.column.is_none_or(|c| c >= 1));
            }
        }
    }
}
