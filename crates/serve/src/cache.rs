//! The bounded, sharded result cache behind the daemon.
//!
//! Keys are pairs of fingerprints: `params` (the job shape — operation,
//! threshold, algorithm, every output-relevant flag) and `content` (the
//! canonical input digest from [`crate::canon`]). A warm hit returns the
//! cached rendered body and stats artifact in O(1) — no parsing beyond
//! the fingerprint, no oracle queries, no engine work.
//!
//! Mine entries additionally retain the mined collection and database
//! ([`MineArtifacts`]), which is what powers the near-miss route: a
//! request whose content digest is missing but whose input's prefix
//! ladder contains a cached entry's digest re-mines *incrementally* from
//! that base instead of from scratch ([`ResultCache::find_mine_base`]).
//!
//! The cache is sharded by the params fingerprint, so concurrent jobs of
//! different shapes never contend on one lock, while all candidates for
//! one shape (every cacheable base for an appended-rows probe) live in
//! one shard and are scanned under a single lock acquisition. Capacity is
//! bounded per shard; eviction is least-recently-used, with recency
//! stamped from one global atomic tick so hits only touch the entry's own
//! stamp.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dualminer_mining::apriori::FrequentSets;
use dualminer_mining::TransactionDb;

use crate::canon::CanonBaskets;

/// Shard count. Power of two, plenty for a worker pool bounded by core
/// count; the shard index is the low bits of the params fingerprint.
const SHARDS: usize = 16;

/// The retained mined state of a complete `mine` job — exactly the two
/// arguments incremental re-mining needs as its base.
#[derive(Debug)]
pub struct MineArtifacts {
    /// The database the cached result was mined from.
    pub db: TransactionDb,
    /// The complete mined collection (itemsets, borders, accounting).
    pub sets: FrequentSets,
}

/// One cached result.
#[derive(Debug)]
pub struct Entry {
    /// Params fingerprint (job shape).
    pub params: u64,
    /// Canonical content fingerprint of the input.
    pub content: u64,
    /// Input rows (basket transactions) for mine entries; 0 otherwise.
    pub rows: u64,
    /// The rendered stdout body, byte-equal to a cold run's.
    pub body: Arc<str>,
    /// The stats JSON artifact recorded when the entry was computed.
    pub stats: Arc<str>,
    /// The job verdict: 0, or 1 for a `verify-dual` "not dual" answer
    /// (still a complete, cacheable result).
    pub exit: i32,
    /// Mined state for incremental re-mining (mine entries only).
    pub mine: Option<Arc<MineArtifacts>>,
}

/// Cache occupancy and traffic counters, for `server-stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Entries currently resident.
    pub entries: u64,
    /// Exact-key lookup hits.
    pub hits: u64,
    /// Exact-key lookup misses.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

struct Slot {
    entry: Arc<Entry>,
    last_used: u64,
}

type Shard = HashMap<(u64, u64), Slot>;

/// The bounded, sharded, LRU result cache.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry cap (total capacity spread over the shards).
    shard_cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache bounded at roughly `capacity` entries (rounded up to the
    /// shard grid; at least one entry per shard).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_cap: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, params: u64) -> &Mutex<Shard> {
        &self.shards[(params as usize) % SHARDS]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Exact-key lookup; refreshes recency on hit.
    pub fn lookup(&self, params: u64, content: u64) -> Option<Arc<Entry>> {
        let mut shard = self.shard(params).lock().unwrap();
        match shard.get_mut(&(params, content)) {
            Some(slot) => {
                slot.last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The appended-rows probe: among cached mine entries with this exact
    /// `params` whose content digest appears in `canon`'s prefix ladder
    /// (and whose prefix already interned every item — see
    /// [`crate::canon::RowMark::n_items`]), returns the one covering the
    /// most rows, with that row count. The caller re-mines only
    /// `canon.rows_from(rows)` on top of it.
    pub fn find_mine_base(&self, params: u64, canon: &CanonBaskets) -> Option<(Arc<Entry>, usize)> {
        let mut shard = self.shard(params).lock().unwrap();
        let mut best: Option<(&(u64, u64), usize)> = None;
        for (key, slot) in shard.iter() {
            if key.0 != params || slot.entry.mine.is_none() {
                continue;
            }
            let Some(rows) = canon.append_base(slot.entry.content) else {
                continue;
            };
            // A stale entry whose recorded row count disagrees with the
            // ladder position cannot be a base.
            if slot.entry.rows != rows as u64 {
                continue;
            }
            if best.map_or(true, |(_, r)| rows > r) {
                best = Some((key, rows));
            }
        }
        let (key, rows) = best.map(|(k, r)| (*k, r))?;
        let slot = shard.get_mut(&key).expect("picked key is resident");
        slot.last_used = self.next_tick();
        Some((Arc::clone(&slot.entry), rows))
    }

    /// Inserts a complete result, evicting the shard's least-recently-used
    /// entry if it is full. Replaces any existing entry under the same key
    /// (idempotent for the duplicate computations that slip past in-flight
    /// dedup, e.g. a re-run after an eviction).
    pub fn insert(&self, entry: Entry) {
        let key = (entry.params, entry.content);
        let mut shard = self.shard(entry.params).lock().unwrap();
        let fresh = self.next_tick();
        if shard.len() >= self.shard_cap && !shard.contains_key(&key) {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                shard.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            key,
            Slot {
                entry: Arc::new(entry),
                last_used: fresh,
            },
        );
    }

    /// Every resident entry, in deterministic `(params, content)` order —
    /// the snapshot writer's view. Shards are drained one lock at a time,
    /// so a concurrent insert may or may not appear; the snapshot is a
    /// point-in-time approximation, which is all crash recovery needs.
    pub fn export(&self) -> Vec<Arc<Entry>> {
        let mut entries: Vec<Arc<Entry>> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .map(|slot| Arc::clone(&slot.entry))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|e| (e.params, e.content));
        entries
    }

    /// Current occupancy and traffic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().len() as u64)
                .sum(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canon_baskets;

    fn entry(params: u64, content: u64) -> Entry {
        Entry {
            params,
            content,
            rows: 0,
            body: "body".into(),
            stats: "{}".into(),
            exit: 0,
            mine: None,
        }
    }

    fn mine_entry(params: u64, text: &str) -> Entry {
        let canon = canon_baskets(text).unwrap();
        let (_, db) = canon.build(dualminer_mining::DEFAULT_SEGMENT_ROWS);
        let sets = dualminer_mining::apriori::apriori(&db, 1);
        Entry {
            params,
            content: canon.fingerprint,
            rows: canon.rows.len() as u64,
            body: "body".into(),
            stats: "{}".into(),
            exit: 0,
            mine: Some(Arc::new(MineArtifacts { db, sets })),
        }
    }

    #[test]
    fn lookup_hit_and_miss() {
        let cache = ResultCache::new(8);
        cache.insert(entry(1, 10));
        assert!(cache.lookup(1, 10).is_some());
        assert!(cache.lookup(1, 11).is_none());
        assert!(cache.lookup(2, 10).is_none());
        let c = cache.counters();
        assert_eq!((c.entries, c.hits, c.misses, c.evictions), (1, 1, 2, 0));
    }

    #[test]
    fn lru_eviction_within_a_shard() {
        // Same params → same shard; cap 16 entries spread over 16 shards
        // is 1 per shard, so the shard holds exactly one entry.
        let cache = ResultCache::new(16);
        cache.insert(entry(5, 100));
        cache.insert(entry(5, 101));
        assert!(cache.lookup(5, 100).is_none(), "oldest evicted");
        assert!(cache.lookup(5, 101).is_some());
        assert_eq!(cache.counters().evictions, 1);

        // With room for two, a *hit* refreshes recency: the untouched
        // entry is the one to go.
        let cache = ResultCache::new(32);
        cache.insert(entry(5, 100));
        cache.insert(entry(5, 101));
        assert!(cache.lookup(5, 100).is_some());
        cache.insert(entry(5, 102));
        assert!(cache.lookup(5, 100).is_some(), "recently hit survives");
        assert!(cache.lookup(5, 101).is_none(), "LRU evicted");
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let cache = ResultCache::new(16);
        cache.insert(entry(5, 100));
        cache.insert(entry(5, 100));
        let c = cache.counters();
        assert_eq!((c.entries, c.evictions), (1, 0));
    }

    #[test]
    fn export_is_deterministically_ordered() {
        let cache = ResultCache::new(64);
        for (p, c) in [(3u64, 30u64), (1, 11), (2, 20), (1, 10)] {
            cache.insert(entry(p, c));
        }
        let keys: Vec<(u64, u64)> = cache
            .export()
            .iter()
            .map(|e| (e.params, e.content))
            .collect();
        assert_eq!(keys, vec![(1, 10), (1, 11), (2, 20), (3, 30)]);
    }

    #[test]
    fn find_mine_base_picks_the_largest_prefix() {
        const BASE3: &str = "a b\nb c\na\n";
        const BASE4: &str = "a b\nb c\na\nc a\n";
        const EXT: &str = "a b\nb c\na\nc a\nb\n";
        let cache = ResultCache::new(64);
        cache.insert(mine_entry(7, BASE3));
        cache.insert(mine_entry(7, BASE4));
        cache.insert(mine_entry(8, BASE4)); // different job shape: ignored

        let ext = canon_baskets(EXT).unwrap();
        let (base, rows) = cache.find_mine_base(7, &ext).unwrap();
        assert_eq!(rows, 4, "largest covered prefix wins");
        assert_eq!(base.content, canon_baskets(BASE4).unwrap().fingerprint);
        // No base under a params fingerprint never inserted.
        assert!(cache.find_mine_base(9, &ext).is_none());
        // The exact input is not its own append base — but the shorter
        // cached prefix still is (the route a post-eviction rerun takes
        // when the exact-key lookup misses).
        let same = canon_baskets(BASE4).unwrap();
        let (base, rows) = cache.find_mine_base(7, &same).unwrap();
        assert_eq!(rows, 3);
        assert_eq!(base.content, canon_baskets(BASE3).unwrap().fingerprint);
    }
}
