//! # dualminer-serve
//!
//! The mining-as-a-service runtime behind `dualminer serve`: everything a
//! long-lived daemon needs that a one-shot CLI run does not, split out of
//! the CLI so both frontends execute jobs through the *same* code and
//! therefore produce byte-identical results.
//!
//! The layering, bottom-up:
//!
//! * [`formats`] — the input-file parsers (baskets, CSV relations,
//!   hypergraphs, events), moved here from the CLI so both frontends
//!   share one parse.
//! * [`job`] — the job vocabulary: [`job::RunOpts`] (budgets, fault
//!   tolerance, checkpointing), [`job::Support`], and the flag-value
//!   parsers (`--timeout` durations, `--algo` spellings, support
//!   thresholds) reused by the CLI parser and the wire protocol.
//! * [`exec`] — job execution and rendering: each subcommand body
//!   (engine routing, budget handling, checkpoint resume, output
//!   formatting) as a function from parsed input to an output string.
//!   The CLI prints that string; the daemon caches and ships it.
//! * [`canon`] — canonical input fingerprinting on top of
//!   [`dualminer_obs::fingerprint`]: whitespace/comment-equivalent
//!   inputs hash equal, and basket inputs record per-row prefix digests
//!   so appended-rows near-misses are recognized.
//! * [`cache`] — the bounded, sharded, LRU result cache keyed by
//!   (params fingerprint, content fingerprint), holding rendered bodies,
//!   stats artifacts, and the mined collections that power incremental
//!   re-mining.
//! * [`persist`] — crash-safe cache snapshots: the warm cache written
//!   through the checkpoint crate's atomic envelope on shutdown (and
//!   periodically) and restored on boot, so a restart keeps its hits.
//! * [`proto`] — the line-oriented JSON wire protocol: request parsing
//!   and response-event builders.
//! * [`server`] — the daemon: listeners, the bounded worker pool,
//!   admission control and load shedding, server-side deadlines,
//!   in-flight deduplication, cancellation, and clean shutdown.
//! * [`client`] — a small blocking client used by `dualminer request`,
//!   the integration tests, and the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod client;
pub mod exec;
pub mod formats;
pub mod job;
pub mod persist;
pub mod proto;
pub mod server;
