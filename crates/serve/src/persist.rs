//! Crash-safe persistence for the result cache.
//!
//! The daemon's warm-hit win (BENCH_pr9: 171× over a cold compute) lives
//! entirely in process memory, so a restart — planned or SIGKILL — used
//! to start cold. This module snapshots the sharded LRU to disk through
//! the same atomic envelope the checkpoint crate uses for engine state
//! (tmp file + fsync + rename, FNV-checksummed payload), and restores it
//! on boot. A torn or corrupted snapshot never fails boot: the caller
//! logs a warning and cold-starts, exactly as if no snapshot existed.
//!
//! What is persisted per entry: the cache key (`params`/`content`
//! fingerprints as zero-padded hex — the integer-only JSON dialect cannot
//! carry a full `u64`), the row count, exit code, rendered body, and
//! stats artifact. The in-memory [`MineArtifacts`] (mined collection +
//! database) are deliberately *not* serialized: restored entries answer
//! exact-key warm hits byte-identically but sit out the incremental
//! appended-rows probe until re-mined once. Snapshot size stays
//! proportional to rendered output, not to the mined databases.

use std::path::Path;
use std::sync::Arc;

use dualminer_obs::checkpoint::{CheckpointError, CheckpointSink, FileCheckpoint};
use dualminer_obs::Json;

use crate::cache::{Entry, ResultCache};

/// The envelope `kind` discriminator for cache snapshots.
pub const SNAPSHOT_KIND: &str = "serve-cache";

/// Snapshot payload schema version, bumped when the entry fields change.
/// Distinct from the envelope's own version: the envelope validates the
/// container, this validates the contents.
pub const SNAPSHOT_VERSION: i64 = 1;

fn hex_u64(n: u64) -> String {
    format!("{n:016x}")
}

fn parse_hex_u64(s: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| CheckpointError::Corrupt(format!("invalid fingerprint {s:?}")))
}

/// Writes a snapshot of every resident cache entry to `path`, atomically
/// replacing any previous snapshot. Returns the number of entries saved.
pub fn save_snapshot(cache: &ResultCache, path: &Path) -> Result<u64, CheckpointError> {
    let entries = cache.export();
    let rows: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("params".into(), Json::Str(hex_u64(e.params))),
                ("content".into(), Json::Str(hex_u64(e.content))),
                ("rows".into(), Json::uint(e.rows)),
                ("exit".into(), Json::Int(i64::from(e.exit))),
                ("body".into(), Json::str(e.body.as_ref())),
                ("stats".into(), Json::str(e.stats.as_ref())),
            ])
        })
        .collect();
    let payload = Json::Obj(vec![
        ("snapshot_version".into(), Json::Int(SNAPSHOT_VERSION)),
        ("entries".into(), Json::Arr(rows)),
    ]);
    FileCheckpoint::new(path).save(SNAPSHOT_KIND, &payload)?;
    Ok(entries.len() as u64)
}

/// Loads a snapshot from `path` into `cache`. Returns the number of
/// entries restored; `Ok(0)` when no snapshot file exists (a fresh
/// deployment). Any structural problem — wrong envelope kind, unknown
/// snapshot version, malformed entries — is `Corrupt`, so the caller can
/// warn and cold-start rather than trust a half-readable file.
pub fn load_snapshot(cache: &ResultCache, path: &Path) -> Result<u64, CheckpointError> {
    let Some(envelope) = FileCheckpoint::new(path).load()? else {
        return Ok(0);
    };
    if envelope.kind != SNAPSHOT_KIND {
        return Err(CheckpointError::Corrupt(format!(
            "not a cache snapshot (kind {:?})",
            envelope.kind
        )));
    }
    let version = envelope
        .payload
        .get("snapshot_version")
        .and_then(Json::as_int);
    if version != Some(SNAPSHOT_VERSION) {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported snapshot version {version:?} (expected {SNAPSHOT_VERSION})"
        )));
    }
    let entries = envelope
        .payload
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Corrupt("missing entries array".into()))?;
    let field = |e: &Json, key: &str| -> Result<String, CheckpointError> {
        e.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| CheckpointError::Corrupt(format!("entry missing {key:?}")))
    };
    let mut restored = 0u64;
    for e in entries {
        let params = parse_hex_u64(&field(e, "params")?)?;
        let content = parse_hex_u64(&field(e, "content")?)?;
        let rows = e
            .get("rows")
            .and_then(Json::as_uint)
            .ok_or_else(|| CheckpointError::Corrupt("entry missing \"rows\"".into()))?;
        let exit = e
            .get("exit")
            .and_then(Json::as_int)
            .and_then(|n| i32::try_from(n).ok())
            .ok_or_else(|| CheckpointError::Corrupt("entry missing \"exit\"".into()))?;
        cache.insert(Entry {
            params,
            content,
            rows,
            body: Arc::from(field(e, "body")?.as_str()),
            stats: Arc::from(field(e, "stats")?.as_str()),
            exit,
            // Mined artifacts are not persisted; the restored entry
            // serves exact-key hits and is ineligible as an incremental
            // base (find_mine_base skips entries without artifacts).
            mine: None,
        });
        restored += 1;
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(params: u64, content: u64, body: &str) -> Entry {
        Entry {
            params,
            content,
            rows: 3,
            body: body.into(),
            stats: r#"{"queries":7}"#.into(),
            exit: 0,
            mine: None,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dualminer_persist_{}_{name}", std::process::id()))
    }

    #[test]
    fn snapshot_round_trips_entries() {
        let path = tmp("roundtrip");
        let cache = ResultCache::new(64);
        // A key above i64::MAX exercises the hex encoding.
        cache.insert(entry(u64::MAX - 1, 42, "body one\n"));
        cache.insert(entry(7, u64::MAX, "body two\n"));
        assert_eq!(save_snapshot(&cache, &path).unwrap(), 2);

        let restored = ResultCache::new(64);
        assert_eq!(load_snapshot(&restored, &path).unwrap(), 2);
        let e = restored.lookup(u64::MAX - 1, 42).expect("restored entry");
        assert_eq!(e.body.as_ref(), "body one\n");
        assert_eq!(e.stats.as_ref(), r#"{"queries":7}"#);
        assert_eq!((e.rows, e.exit), (3, 0));
        assert!(e.mine.is_none(), "artifacts are not persisted");
        assert!(restored.lookup(7, u64::MAX).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_snapshot_is_a_cold_start() {
        let cache = ResultCache::new(8);
        assert_eq!(load_snapshot(&cache, &tmp("nonexistent")).unwrap(), 0);
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let path = tmp("corrupt");
        let cache = ResultCache::new(8);
        cache.insert(entry(1, 2, "body\n"));
        save_snapshot(&cache, &path).unwrap();

        // Flip one byte inside the payload: the FNV checksum catches it.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let at = text.find("body").unwrap();
        text.replace_range(at..at + 1, "x");
        std::fs::write(&path, &text).unwrap();
        let restored = ResultCache::new(8);
        assert!(matches!(
            load_snapshot(&restored, &path),
            Err(CheckpointError::Corrupt(_))
        ));
        assert_eq!(restored.counters().entries, 0);

        // Garbage that is not even JSON.
        std::fs::write(&path, "not a snapshot").unwrap();
        assert!(matches!(
            load_snapshot(&restored, &path),
            Err(CheckpointError::Corrupt(_))
        ));

        // A valid envelope of the wrong kind is rejected too.
        let other = dualminer_obs::checkpoint::encode("levelwise", &Json::Obj(vec![]));
        std::fs::write(&path, other).unwrap();
        assert!(matches!(
            load_snapshot(&restored, &path),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
