//! The job vocabulary shared by the CLI and the daemon: run options
//! (budgets, fault tolerance, checkpointing), support thresholds, and
//! the flag-value parsers both frontends accept.
//!
//! These types lived in the CLI's argument parser until the daemon
//! needed them too; they moved down here so a wire request and a command
//! line deserialize into the *same* structures and execute through the
//! same [`crate::exec`] paths.

use std::time::Duration;

use dualminer_hypergraph::TrAlgorithm;

/// Budget and observability options shared by every subcommand and every
/// daemon job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunOpts {
    /// Wall-clock budget (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// Oracle-query / candidate-evaluation budget.
    pub max_queries: Option<u64>,
    /// Enumerated-transversal budget.
    pub max_transversals: Option<u64>,
    /// Print progress events to stderr (CLI) / stream them (daemon).
    pub progress: bool,
    /// Print a JSON stats line as the final line of stdout.
    pub stats_json: bool,
    /// Deterministic fault-injection schedule (`--fault-inject`).
    pub fault_inject: Option<dualminer_obs::FaultSpec>,
    /// Max deterministic retries per transiently failing query (`--retry`).
    pub retry: u32,
    /// Checkpoint file for crash-safe snapshots (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Queries between checkpoint saves (`--checkpoint-every`).
    pub checkpoint_every: Option<u64>,
    /// Resume from the checkpoint file (`--resume`).
    pub resume: bool,
    /// Work-stealing task grain (`--grain`): smallest index range a
    /// scheduler task is split down to. `None` leaves the process
    /// default; `Some(0)` selects the adaptive auto grain explicitly.
    /// Output is identical for every grain.
    pub grain: Option<usize>,
}

impl RunOpts {
    /// The declarative budget these options describe.
    pub fn budget(&self) -> dualminer_obs::Budget {
        dualminer_obs::Budget {
            timeout: self.timeout,
            max_queries: self.max_queries,
            max_transversals: self.max_transversals,
        }
    }

    /// Whether any fault-tolerance option was given. Subcommands route
    /// through the fallible engines only then, so plain runs keep their
    /// specialized fast paths (and their exact output) untouched.
    pub fn fault_tolerant(&self) -> bool {
        self.fault_inject.is_some() || self.retry > 0 || self.checkpoint.is_some() || self.resume
    }

    /// The retry policy these options describe (zero-backoff: the CLI's
    /// transient faults are injected, not waiting on a real resource).
    pub fn retry_policy(&self) -> dualminer_obs::RetryPolicy {
        dualminer_obs::RetryPolicy::retries(self.retry)
    }

    /// Checkpoint save cadence in queries (`--checkpoint-every`, ≥ 1).
    pub fn checkpoint_cadence(&self) -> u64 {
        self.checkpoint_every.unwrap_or(64).max(1)
    }
}

/// Support threshold: absolute row count or relative fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Support {
    /// At least this many rows.
    Absolute(usize),
    /// At least this fraction of rows (exclusive 0, inclusive 1).
    Relative(f64),
}

impl Support {
    /// Resolves to an absolute threshold for a database with `rows` rows.
    pub fn resolve(&self, rows: usize) -> usize {
        match *self {
            Support::Absolute(n) => n,
            Support::Relative(f) => ((f * rows as f64).ceil() as usize).max(1),
        }
    }
}

/// Parses a `--algo` / `"algo"` value. Unknown names get an error
/// listing every accepted spelling.
pub fn parse_algo(s: &str) -> Result<TrAlgorithm, String> {
    match s {
        "auto" => Ok(TrAlgorithm::Auto),
        "berge" => Ok(TrAlgorithm::Berge),
        "fk" => Ok(TrAlgorithm::FkJointGeneration),
        "levelwise" => Ok(TrAlgorithm::LevelwiseLargeEdges),
        "mmcs" => Ok(TrAlgorithm::Mmcs),
        "mu-mmcs" => Ok(TrAlgorithm::MuMmcs),
        "egm" => Ok(TrAlgorithm::Egm),
        other => Err(format!(
            "unknown --algo value {other:?} (want auto, berge, fk, levelwise, mmcs, mu-mmcs, or egm)"
        )),
    }
}

/// Parses a duration: a number with an optional unit suffix (`ns`, `us`,
/// `ms`, `s`, `m`); a bare number means seconds. `0` (any unit) is a
/// valid, already-expired budget.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let split = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .parse()
        .map_err(|_| format!("invalid duration {s:?} (want e.g. 500ms, 2s, 1m)"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("invalid duration {s:?}"));
    }
    let nanos = match unit {
        "ns" => value,
        "us" | "µs" => value * 1e3,
        "ms" => value * 1e6,
        "s" | "" => value * 1e9,
        "m" => value * 60.0 * 1e9,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok(Duration::from_nanos(nanos as u64))
}

/// Parses a support threshold: an integer ≥ 1 (absolute rows) or a
/// fraction in (0, 1] (relative).
pub fn parse_support(s: &str) -> Result<Support, String> {
    if let Ok(n) = s.parse::<usize>() {
        if n == 0 {
            return Err("--min-support must be positive".into());
        }
        return Ok(Support::Absolute(n));
    }
    match s.parse::<f64>() {
        Ok(f) if f > 0.0 && f <= 1.0 => Ok(Support::Relative(f)),
        _ => Err(format!(
            "invalid --min-support value {s:?} (want integer ≥ 1 or fraction in (0,1])"
        )),
    }
}

/// Cross-flag validation shared by the CLI parser and the wire protocol.
pub fn validate_run(run: &RunOpts) -> Result<(), String> {
    if run.resume && run.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    if run.checkpoint_every.is_some() && run.checkpoint.is_none() {
        return Err("--checkpoint-every requires --checkpoint <path>".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_resolution() {
        assert_eq!(Support::Absolute(7).resolve(100), 7);
        assert_eq!(Support::Relative(0.1).resolve(100), 10);
        assert_eq!(Support::Relative(0.101).resolve(100), 11); // ceil
        assert_eq!(Support::Relative(0.001).resolve(10), 1); // min 1
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("3").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_duration("1m").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("250us").unwrap(), Duration::from_micros(250));
        assert_eq!(parse_duration("0").unwrap(), Duration::ZERO);
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("5h").is_err());
    }

    #[test]
    fn supports_and_algos() {
        assert_eq!(parse_support("5").unwrap(), Support::Absolute(5));
        assert_eq!(parse_support("0.25").unwrap(), Support::Relative(0.25));
        assert!(parse_support("0").is_err());
        assert!(parse_support("1.5").is_err());
        assert_eq!(parse_algo("mu-mmcs").unwrap(), TrAlgorithm::MuMmcs);
        assert!(parse_algo("bogus").is_err());
    }

    #[test]
    fn run_opts_defaults() {
        let plain = RunOpts::default();
        assert!(!plain.fault_tolerant());
        assert_eq!(plain.checkpoint_cadence(), 64);
        assert_eq!(plain.retry_policy().max_retries, 0);
        assert!(validate_run(&plain).is_ok());
        let bad = RunOpts {
            resume: true,
            ..RunOpts::default()
        };
        assert!(validate_run(&bad).is_err());
    }
}
