//! Job execution and rendering, shared by the CLI and the daemon.
//!
//! Each public function here is one subcommand body — engine routing,
//! fault tolerance, checkpoint resume, budget handling, and output
//! formatting — turned into a function from parsed input to a rendered
//! output string. The CLI prints the string to stdout; the daemon ships
//! it in a `result` event and stores it in the result cache. Because
//! both frontends run *this* code, a cached daemon answer is byte-equal
//! to a cold CLI run by construction.
//!
//! Nothing here writes to stdout. Narration that the CLI used to
//! `eprintln!` (checkpoint-resume notes, the engine choice) goes through
//! [`ExecCtx::note`], which the CLI points at stderr and the daemon at
//! the client's progress stream.

use std::fmt::Write as _;

use dualminer_bitset::{AttrSet, Universe};
use dualminer_core::border::verify_maxth;
use dualminer_core::checkpoint::{
    Aborted, CheckpointCfg, FaultCtl, ResumeState, DUALIZE_ADVANCE_KIND, LEVELWISE_KIND,
};
use dualminer_core::dualize_advance::{dualize_advance_try_ctl, DualizeAdvanceConfig};
use dualminer_core::fallible::FaultyOracle;
use dualminer_core::levelwise::levelwise_par_try_ctl;
use dualminer_core::oracle::{CountingOracle, FamilyOracle};
use dualminer_fdep::fd::minimal_fd_lhs_via_agree_sets;
use dualminer_fdep::keys::{minimal_keys_via_agree_sets, KeyDiscovery, NonSuperkeyOracle};
use dualminer_fdep::Relation;
use dualminer_hypergraph::{plan, Hypergraph, TrAlgorithm};
use dualminer_mining::apriori::{apriori_par_ctl, FrequentSets};
use dualminer_mining::incremental::{append_rows_ctl, IncrementalUpdate};
use dualminer_mining::rules::association_rules;
use dualminer_mining::seg::{apriori_par_seg_ctl, AprioriSegState, APRIORI_SEG_KIND};
use dualminer_mining::{EclatCfg, FrequencyOracle, TransactionDb};
use dualminer_obs::{
    BudgetReason, DualizeStats, FileCheckpoint, Meter, MiningObserver, RunCtl, RunError,
    StatsCollector,
};

use crate::formats::{self, FormatError};
use crate::job::RunOpts;

/// A job failure, typed by failure class. Exit codes are assigned by the
/// frontends (CLI `CliError`, daemon `error` events) but agree: parse
/// errors are 3, I/O and checkpoint errors 4, surviving oracle faults 5.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// An input could not be parsed.
    Format(FormatError),
    /// File or checkpoint I/O failure, including corrupt or mismatched
    /// checkpoints.
    Io(String),
    /// An oracle fault survived the retry budget.
    Fault(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Format(e) => write!(f, "{e}"),
            JobError::Io(msg) | JobError::Fault(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Everything a job body needs from its frontend: the live budget meter,
/// the observer (stats + progress), the stats collector for engine
/// counter injection, a narration sink, and the worker-thread request.
pub struct ExecCtx<'a> {
    /// The started budget.
    pub meter: &'a Meter,
    /// Event sink: feeds the stats collector and any progress stream.
    pub observer: &'a dyn MiningObserver,
    /// The stats collector behind `observer`, for out-of-band counter
    /// injection (planner/engine counters on transversal runs).
    pub stats: &'a StatsCollector,
    /// Narration sink (`note: …` lines): stderr for the CLI, the
    /// client's progress stream for the daemon.
    pub note: &'a dyn Fn(&str),
    /// Requested worker threads (0 = auto, 1 = sequential).
    pub threads: usize,
}

impl ExecCtx<'_> {
    fn ctl(&self) -> RunCtl<'_> {
        RunCtl::new(self.meter, self.observer)
    }
}

/// A rendered job result.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// The complete stdout body, byte-equal to what the one-shot CLI
    /// prints for the same input and flags (stats line excluded).
    pub body: String,
    /// Why the run stopped early, if it did (the body then holds the
    /// partial prefix).
    pub reason: Option<BudgetReason>,
    /// `verify-dual` answered "not dual" (exit 1 on the CLI).
    pub not_dual: bool,
}

impl JobOutput {
    fn complete(body: String) -> JobOutput {
        JobOutput {
            body,
            reason: None,
            not_dual: false,
        }
    }
}

/// `mine` output options.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MineOpts {
    /// Minimum confidence for association-rule output (absent = none).
    pub rules: Option<f64>,
    /// Also print the maximal sets + negative border.
    pub maximal: bool,
}

macro_rules! out {
    ($body:expr, $($arg:tt)*) => {
        { let _ = writeln!($body, $($arg)*); }
    };
}

fn note_partial(body: &mut String, reason: BudgetReason) {
    out!(body, "\nNOTE: budget exceeded ({reason}); results below are the partial prefix computed before the limit.");
}

fn names(universe: &Universe, set: &AttrSet) -> String {
    set.iter()
        .map(|i| universe.name(i))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Checkpoint plumbing
// ---------------------------------------------------------------------------

/// Loads and validates the resume state when `--resume` was given. A
/// missing checkpoint file starts from scratch (so the same command line
/// works for the first run and every rerun); a corrupt file or a
/// checkpoint from a different engine is an error, never silent data loss.
fn load_resume(
    run: &RunOpts,
    expect_kind: &str,
    cx: &ExecCtx<'_>,
) -> Result<Option<ResumeState>, JobError> {
    if !run.resume {
        return Ok(None);
    }
    // The frontends enforce --resume ⇒ --checkpoint; defend without
    // panicking.
    let Some(path) = run.checkpoint.as_deref() else {
        return Err(JobError::Io("--resume requires --checkpoint".into()));
    };
    let file = FileCheckpoint::new(path);
    let Some(envelope) = file.load().map_err(|e| JobError::Io(e.to_string()))? else {
        (cx.note)(&format!(
            "note: checkpoint {path:?} not found; starting from scratch"
        ));
        return Ok(None);
    };
    let state = ResumeState::from_envelope(&envelope).map_err(|e| JobError::Io(e.to_string()))?;
    if state.kind() != expect_kind {
        return Err(JobError::Io(format!(
            "checkpoint {path:?} holds a {} run, expected {}",
            state.kind(),
            expect_kind
        )));
    }
    (cx.note)(&format!("note: resuming from checkpoint {path:?}"));
    Ok(Some(state))
}

/// Peeks at the checkpoint file's envelope kind when `--resume` was
/// given, without deserializing the state. `mine` routes by this: a
/// checkpoint written by the fault-tolerant levelwise engine resumes on
/// that engine even when the rerun passes no fault flags, and a
/// segment-major checkpoint resumes on the segment engine.
fn resume_kind(run: &RunOpts) -> Result<Option<String>, JobError> {
    if !run.resume {
        return Ok(None);
    }
    let Some(path) = run.checkpoint.as_deref() else {
        return Ok(None);
    };
    let file = FileCheckpoint::new(path);
    let envelope = file.load().map_err(|e| JobError::Io(e.to_string()))?;
    Ok(envelope.map(|e| e.kind))
}

/// Loads the segment-engine resume state when `--resume` was given. Same
/// contract as [`load_resume`]: a missing file starts from scratch, a
/// corrupt or foreign-engine file is an error.
fn load_seg_resume(run: &RunOpts, cx: &ExecCtx<'_>) -> Result<Option<AprioriSegState>, JobError> {
    if !run.resume {
        return Ok(None);
    }
    let Some(path) = run.checkpoint.as_deref() else {
        return Err(JobError::Io("--resume requires --checkpoint".into()));
    };
    let file = FileCheckpoint::new(path);
    let Some(envelope) = file.load().map_err(|e| JobError::Io(e.to_string()))? else {
        (cx.note)(&format!(
            "note: checkpoint {path:?} not found; starting from scratch"
        ));
        return Ok(None);
    };
    if envelope.kind != APRIORI_SEG_KIND {
        return Err(JobError::Io(format!(
            "checkpoint {path:?} holds a {} run, expected {APRIORI_SEG_KIND}",
            envelope.kind
        )));
    }
    let state =
        AprioriSegState::from_json(&envelope.payload).map_err(|e| JobError::Io(e.to_string()))?;
    (cx.note)(&format!("note: resuming from checkpoint {path:?}"));
    Ok(Some(state))
}

/// Converts an aborted fallible run into the error for its cause,
/// pointing the user at `--resume` when a safe point was persisted.
fn abort_error(aborted: Aborted, checkpoint: Option<&str>, cx: &ExecCtx<'_>) -> JobError {
    let Aborted { error, resume } = aborted;
    match error {
        RunError::Oracle(e) => {
            if let (Some(path), true) = (checkpoint, resume.is_some()) {
                (cx.note)(&format!(
                    "note: progress saved to {path:?}; re-run with --resume to continue"
                ));
            }
            JobError::Fault(e.to_string())
        }
        RunError::Checkpoint(msg) => JobError::Io(msg),
    }
}

// ---------------------------------------------------------------------------
// mine
// ---------------------------------------------------------------------------

/// Renders the full `mine` body (header, itemsets, maximal block, rules)
/// from a mined collection. Shared verbatim by the cold and incremental
/// paths, so their outputs can only differ if the collections do.
fn render_mine(
    universe: &Universe,
    db: &TransactionDb,
    sigma: usize,
    fs: &FrequentSets,
    opts: &MineOpts,
    reason: Option<BudgetReason>,
) -> String {
    let mut body = String::new();
    out!(
        body,
        "{} transactions, {} items, min support {} rows",
        db.n_rows(),
        db.n_items(),
        sigma
    );
    if let Some(r) = reason {
        note_partial(&mut body, r);
    }
    out!(body, "\n{} frequent itemsets:", fs.itemsets().len());
    for (set, support) in fs.itemsets() {
        if set.is_empty() {
            continue;
        }
        out!(
            body,
            "  {:<30} support {} ({:.1}%)",
            universe.display(set),
            support,
            100.0 * *support as f64 / db.n_rows() as f64
        );
    }
    if opts.maximal {
        out!(body, "\nMaximal frequent sets (MTh):");
        for m in &fs.maximal {
            out!(body, "  {}", universe.display(m));
        }
        out!(body, "Negative border (certificate of completeness):");
        for b in &fs.negative_border {
            out!(body, "  {}", universe.display(b));
        }
        if reason.is_none() {
            // Verify with Corollary 4 — belt and braces for the user.
            let mut oracle = CountingOracle::new(FrequencyOracle::new(db, sigma));
            let out = verify_maxth(&mut oracle, &fs.maximal, TrAlgorithm::Berge);
            out!(
                body,
                "Verified: {} ({} oracle queries = |Bd⁺|+|Bd⁻|)",
                out.is_maxth,
                out.queries
            );
        } else {
            out!(body, "(not verified: run was cut short, the family is maximal only within the mined prefix)");
        }
    }
    if let Some(conf) = opts.rules {
        if reason.is_none() {
            let rules = association_rules(fs, conf);
            out!(
                body,
                "\n{} association rules (confidence ≥ {conf}):",
                rules.len()
            );
            for r in &rules {
                out!(body, "  {}", r.display(universe));
            }
        } else {
            out!(
                body,
                "\n(association rules skipped: supports are incomplete on a partial run)"
            );
        }
    }
    body
}

/// Mines `db` at absolute threshold `sigma` and renders the `mine` body.
///
/// Engine routing matches the historical CLI exactly: injected faults or
/// retries (or resuming a levelwise checkpoint) take the fault-tolerant
/// levelwise engine; a checkpointed but fault-free run takes the
/// segment-major engine; plain runs keep the specialized apriori fast
/// path. All three are bit-identical on complete runs.
///
/// Returns the rendered output plus the mined collection (which the
/// daemon caches to power incremental re-mining; the CLI drops it).
pub fn mine(
    universe: &Universe,
    db: &TransactionDb,
    sigma: usize,
    opts: &MineOpts,
    run: &RunOpts,
    cx: &ExecCtx<'_>,
) -> Result<(JobOutput, FrequentSets), JobError> {
    cx.observer.on_phase_start("mine");
    let fallible = run.fault_inject.is_some()
        || run.retry > 0
        || resume_kind(run)?.as_deref() == Some(LEVELWISE_KIND);
    let (fs, reason) = if fallible {
        // Fault-tolerant route: the generic levelwise engine over a
        // (possibly fault-injected) frequency oracle — retries,
        // checkpoint/resume — then exact supports recomputed from the
        // database. Bit-identical to apriori on the same input.
        let resume = match load_resume(run, LEVELWISE_KIND, cx)? {
            Some(ResumeState::Levelwise(state)) => Some(state),
            _ => None,
        };
        let sink = run.checkpoint.as_deref().map(FileCheckpoint::new);
        let fault = match &sink {
            Some(s) => FaultCtl::checkpointed(run.retry_policy(), s, run.checkpoint_cadence()),
            None => FaultCtl::with_retry(run.retry_policy()),
        };
        let spec = run.fault_inject.clone().unwrap_or_default();
        let oracle = FaultyOracle::new(FrequencyOracle::new(db, sigma), &spec);
        match levelwise_par_try_ctl(&oracle, cx.threads, &cx.ctl(), &fault, resume) {
            Ok(outcome) => {
                let (lw, reason) = outcome.into_parts();
                (FrequentSets::from_levelwise(db, sigma, &lw), reason)
            }
            Err(aborted) => {
                cx.observer.on_phase_end("mine");
                return Err(abort_error(aborted, run.checkpoint.as_deref(), cx));
            }
        }
    } else if run.fault_tolerant() {
        // Checkpointed (or resumed) but fault-free: the segment-major
        // engine, bit-identical to apriori with per-segment safe points.
        let resume = load_seg_resume(run, cx)?;
        let sink = run.checkpoint.as_deref().map(FileCheckpoint::new);
        let ckpt = sink.as_ref().map(|s| CheckpointCfg {
            sink: s,
            every: run.checkpoint_cadence(),
        });
        match apriori_par_seg_ctl(
            db,
            sigma,
            cx.threads,
            &cx.ctl(),
            ckpt.as_ref(),
            resume,
            &EclatCfg::default(),
        ) {
            Ok(outcome) => outcome.into_parts(),
            Err(RunError::Checkpoint(msg)) => {
                cx.observer.on_phase_end("mine");
                return Err(JobError::Io(msg));
            }
            Err(RunError::Oracle(e)) => {
                cx.observer.on_phase_end("mine");
                return Err(JobError::Fault(e.to_string()));
            }
        }
    } else {
        apriori_par_ctl(db, sigma, cx.threads, &cx.ctl()).into_parts()
    };
    cx.observer.on_phase_end("mine");
    let body = render_mine(universe, db, sigma, &fs, opts, reason);
    Ok((
        JobOutput {
            body,
            reason,
            not_dual: false,
        },
        fs,
    ))
}

/// Incremental re-mining: extends a cached mined collection by appended
/// rows through the FUP-style border update instead of from-scratch
/// work, then renders through the same [`render_mine`] as the cold path.
///
/// On a complete run the update is proven bit-identical to mining the
/// merged database from scratch (itemsets, maximal sets, negative
/// border, per-level candidate accounting), so the rendered body is
/// byte-equal to a cold run on the appended input. Returns the merged
/// database and collection for re-caching under the new fingerprint.
pub fn mine_incremental(
    universe: &Universe,
    old_db: &TransactionDb,
    old: &FrequentSets,
    new_rows: Vec<AttrSet>,
    opts: &MineOpts,
    cx: &ExecCtx<'_>,
) -> (JobOutput, IncrementalUpdate) {
    cx.observer.on_phase_start("mine");
    let sigma = old.min_support();
    let (update, reason) = append_rows_ctl(old_db, old, new_rows, &cx.ctl()).into_parts();
    cx.observer.on_phase_end("mine");
    let body = render_mine(universe, &update.db, sigma, &update.frequent, opts, reason);
    (
        JobOutput {
            body,
            reason,
            not_dual: false,
        },
        update,
    )
}

// ---------------------------------------------------------------------------
// keys
// ---------------------------------------------------------------------------

/// Discovers minimal keys (and optionally minimal FDs) of a relation and
/// renders the `keys` body.
pub fn keys(
    universe: &Universe,
    rel: &Relation,
    fds: bool,
    run: &RunOpts,
    cx: &ExecCtx<'_>,
) -> Result<JobOutput, JobError> {
    let mut body = String::new();
    out!(body, "{} rows × {} attributes", rel.n_rows(), rel.n_attrs());
    cx.observer.on_phase_start("keys");
    let (keys, reason) = if run.fault_tolerant() {
        // Fault-tolerant route: Dualize & Advance under the restricted
        // Is-interesting model (non-superkey oracle) — MTh = maximal
        // agree sets, Bd⁻ = minimal keys.
        let resume = match load_resume(run, DUALIZE_ADVANCE_KIND, cx)? {
            Some(ResumeState::DualizeAdvance(state)) => Some(state),
            _ => None,
        };
        let sink = run.checkpoint.as_deref().map(FileCheckpoint::new);
        let fault = match &sink {
            Some(s) => FaultCtl::checkpointed(run.retry_policy(), s, run.checkpoint_cadence()),
            None => FaultCtl::with_retry(run.retry_policy()),
        };
        let spec = run.fault_inject.clone().unwrap_or_default();
        let mut oracle = FaultyOracle::new(NonSuperkeyOracle::new(rel), &spec);
        match dualize_advance_try_ctl(
            &mut oracle,
            TrAlgorithm::Berge,
            &DualizeAdvanceConfig::default(),
            1,
            &cx.ctl(),
            &fault,
            resume,
        ) {
            Ok(outcome) => {
                let (da, reason) = outcome.into_parts();
                (
                    KeyDiscovery {
                        minimal_keys: da.negative_border,
                        maximal_non_superkeys: da.maximal,
                        queries: da.queries,
                    },
                    reason,
                )
            }
            Err(aborted) => {
                cx.observer.on_phase_end("keys");
                return Err(abort_error(aborted, run.checkpoint.as_deref(), cx));
            }
        }
    } else {
        (minimal_keys_via_agree_sets(rel, TrAlgorithm::Berge), None)
    };
    cx.observer.on_phase_end("keys");
    if let Some(r) = reason {
        note_partial(&mut body, r);
    }
    if keys.minimal_keys.is_empty() && reason.is_none() {
        out!(body, "\nNo keys: the relation contains duplicate rows.");
    } else {
        out!(body, "\nMinimal keys:");
        for k in &keys.minimal_keys {
            out!(body, "  {{{}}}", names(universe, k));
        }
    }
    out!(body, "Maximal agree sets:");
    for ag in &keys.maximal_non_superkeys {
        out!(body, "  {{{}}}", names(universe, ag));
    }
    if fds {
        out!(body, "\nMinimal functional dependencies:");
        let mut any = false;
        for target in 0..rel.n_attrs() {
            let d = minimal_fd_lhs_via_agree_sets(rel, target, TrAlgorithm::Berge);
            for lhs in &d.minimal_lhs {
                any = true;
                out!(
                    body,
                    "  {{{}}} → {}",
                    names(universe, lhs),
                    universe.name(target)
                );
            }
        }
        if !any {
            out!(body, "  (none)");
        }
    }
    Ok(JobOutput {
        body,
        reason,
        not_dual: false,
    })
}

// ---------------------------------------------------------------------------
// transversals
// ---------------------------------------------------------------------------

/// Flattens a planner report into the stats-artifact record: the executed
/// backend and rule always, engine counters only where that backend
/// collects them (so e.g. a Berge run stamps no `tr_nodes`).
fn dualize_stats(report: &plan::PlanReport) -> DualizeStats {
    let mu = report.mu.as_ref();
    DualizeStats {
        backend: report.decision.backend_name().to_string(),
        rule: report.decision.rule.to_string(),
        nodes: mu.map(|m| m.nodes),
        emitted: mu.map(|m| m.emitted),
        minimality_prunes: mu.map(|m| m.minimality_prunes),
        dead_branches: mu.map(|m| m.dead_branches),
        crit_removals: mu.map(|m| m.crit_removals),
        crit_restores: mu.map(|m| m.crit_restores),
        egm_splits: report.egm.as_ref().map(|e| e.splits),
        egm_leaves: report.egm.as_ref().map(|e| e.leaves),
    }
}

/// Computes Tr(H) and renders the `transversals` body.
pub fn transversals(
    universe: &Universe,
    h: &Hypergraph,
    algo: TrAlgorithm,
    run: &RunOpts,
    cx: &ExecCtx<'_>,
) -> Result<JobOutput, JobError> {
    let mut body = String::new();
    out!(
        body,
        "hypergraph: {} vertices, {} edges (simple: {})",
        h.universe_size(),
        h.len(),
        h.is_simple()
    );
    cx.observer.on_phase_start("transversals");
    let (edges, reason, engine) = if run.fault_tolerant() {
        // Fault-tolerant route via Theorem 7: against the family oracle
        // of edge complements, "uninteresting" = transversal, so a
        // Dualize & Advance run delivers Bd⁻ = Tr(H).
        let resume = match load_resume(run, DUALIZE_ADVANCE_KIND, cx)? {
            Some(ResumeState::DualizeAdvance(state)) => Some(state),
            _ => None,
        };
        let sink = run.checkpoint.as_deref().map(FileCheckpoint::new);
        let fault = match &sink {
            Some(s) => FaultCtl::checkpointed(run.retry_policy(), s, run.checkpoint_cadence()),
            None => FaultCtl::with_retry(run.retry_policy()),
        };
        let spec = run.fault_inject.clone().unwrap_or_default();
        let complements: Vec<_> = h.edges().iter().map(AttrSet::complement).collect();
        let mut oracle =
            FaultyOracle::new(FamilyOracle::new(h.universe_size(), complements), &spec);
        match dualize_advance_try_ctl(
            &mut oracle,
            algo,
            &DualizeAdvanceConfig::default(),
            cx.threads,
            &cx.ctl(),
            &fault,
            resume,
        ) {
            Ok(outcome) => {
                let (da, reason) = outcome.into_parts();
                (
                    da.negative_border,
                    reason,
                    format!("dualize-advance/{}", plan::algo_name(algo)),
                )
            }
            Err(aborted) => {
                cx.observer.on_phase_end("transversals");
                return Err(abort_error(aborted, run.checkpoint.as_deref(), cx));
            }
        }
    } else {
        // Planner path: `--algo auto` resolves through the instance-shape
        // planner; the report carries what actually ran plus the engine's
        // search counters, injected into the stats artifact from up here
        // (obs sits below hypergraph, same pattern as the scheduler
        // counters).
        let (outcome, report) = plan::dualize_ctl_report(h, algo, cx.threads, &cx.ctl());
        cx.stats.set_dualize(dualize_stats(&report));
        let (tr, reason) = outcome.into_parts();
        let engine = if algo == TrAlgorithm::Auto {
            format!(
                "{} (planner: {})",
                report.decision.backend_name(),
                report.decision.rule
            )
        } else {
            report.decision.backend_name().to_string()
        };
        (tr.edges().to_vec(), reason, engine)
    };
    cx.observer.on_phase_end("transversals");
    if let Some(r) = reason {
        note_partial(&mut body, r);
    }
    // Engine choice is narration, not results: the note channel keeps
    // the body bit-identical across engines computing the same Tr(H)
    // (notably a warm cache hit vs. the cold run that filled it); the
    // machine-readable copy is the stats JSON `planner_choice`.
    (cx.note)(&format!("note: engine {engine}"));
    out!(body, "\nTr(H): {} minimal transversals:", edges.len());
    for t in &edges {
        out!(body, "  {{{}}}", names(universe, t));
    }
    Ok(JobOutput {
        body,
        reason,
        not_dual: false,
    })
}

// ---------------------------------------------------------------------------
// verify-dual
// ---------------------------------------------------------------------------

/// Decides whether `g = Tr(f)` without enumerating. Parses both texts
/// over one merged vertex dictionary (so the families land in the same
/// universe even when each mentions only its own vertex names), then
/// runs the witness checker. The body is the verdict line; `not_dual`
/// carries the exit-1 verdict.
pub fn verify_dual_pair(
    f_text: &str,
    g_text: &str,
    f_label: &str,
    g_label: &str,
) -> Result<JobOutput, JobError> {
    let mut vocab: Vec<String> = Vec::new();
    let mut index = std::collections::HashMap::new();
    let f_raw = formats::parse_hypergraph_raw(f_text, &mut vocab, &mut index)
        .map_err(|e| JobError::Format(e.in_file(f_label)))?;
    let g_raw = formats::parse_hypergraph_raw(g_text, &mut vocab, &mut index)
        .map_err(|e| JobError::Format(e.in_file(g_label)))?;
    let n = vocab.len();
    let f =
        formats::hypergraph_from_raw(n, f_raw).map_err(|e| JobError::Format(e.in_file(f_label)))?;
    let g =
        formats::hypergraph_from_raw(n, g_raw).map_err(|e| JobError::Format(e.in_file(g_label)))?;
    if dualminer_hypergraph::verify_dual(&f, &g) {
        Ok(JobOutput::complete("dual\n".to_string()))
    } else {
        Ok(JobOutput {
            body: "not dual\n".to_string(),
            reason: None,
            not_dual: true,
        })
    }
}
