//! The `dualminer serve` daemon.
//!
//! A long-lived process accepting concurrent clients over TCP and/or a
//! unix socket, speaking the line-oriented JSON protocol of
//! [`crate::proto`]. Each connection gets a reader thread; jobs are
//! multiplexed onto a bounded worker pool (the engines underneath fan
//! out further through the deterministic work-stealing scheduler, so the
//! pool bounds *jobs*, not parallelism).
//!
//! The perf core is the flow in [`serve_job`]:
//!
//! 1. canonical content fingerprint (input equivalence, not bytes),
//! 2. exact-key cache lookup — warm hits answer in O(1) with the stored
//!    body and stats, no engine or oracle work,
//! 3. appended-rows probe — a mine request extending a cached input
//!    re-mines incrementally from the cached collection,
//! 4. in-flight dedup — N identical concurrent requests run the engine
//!    once; the rest wait on the flight and share its result,
//! 5. a fresh computation through [`crate::exec`] otherwise.
//!
//! Jobs are cancellable (`cancel` trips the job's budget meter, so the
//! engines stop at their next safe point exactly as a `--timeout` would)
//! and resumable across daemon restarts via the same checkpoint
//! envelopes the CLI uses. Shutdown drains: the queue closes, workers
//! finish what they hold, every connection and listener thread joins.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dualminer_bitset::Universe;
use dualminer_obs::{available_cpus, BudgetReason, Meter, MiningObserver, StatsCollector};

use crate::cache::{Entry, MineArtifacts, ResultCache};
use crate::canon;
use crate::exec::{self, ExecCtx, JobError, MineOpts};
use crate::formats;
use crate::job::Support;
use crate::proto::{self, CacheTag, Input, JobRequest, OpKind, Request, ServerCounters};

/// How long blocking reads and accept polls wait before re-checking the
/// shutdown flag. Bounds shutdown latency without busy-spinning.
const POLL: Duration = Duration::from_millis(100);

/// Server configuration (the `serve` subcommand's flags).
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// TCP listen address (e.g. `"127.0.0.1:0"`). When both this and
    /// `unix` are `None`, defaults to an ephemeral localhost TCP port.
    pub tcp: Option<String>,
    /// Unix socket path to listen on.
    pub unix: Option<String>,
    /// Worker-pool size (0 = available CPUs).
    pub workers: usize,
    /// Result-cache capacity in entries (0 = default 256).
    pub cache_entries: usize,
}

// ---------------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------------

/// The write half of one connection. Workers and the reader thread both
/// emit events here; the mutex makes each line atomic. A failed write
/// marks the connection dead and later sends become no-ops — a client
/// that disconnected mid-job just loses its events, the job itself
/// completes (and populates the cache) regardless.
struct ConnSink {
    writer: Mutex<Box<dyn Write + Send>>,
    alive: AtomicBool,
}

impl ConnSink {
    fn new(writer: Box<dyn Write + Send>) -> ConnSink {
        ConnSink {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
        }
    }

    fn send(&self, line: &str) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.writer.lock().unwrap();
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }
}

/// Buffered line reading over a raw stream with a read timeout. Unlike
/// `BufReader::read_line`, a timeout between chunks never discards the
/// partial line already buffered — it just re-checks the shutdown flag
/// and keeps reading.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// The next complete line, or `None` on EOF, hard error, or shutdown.
    fn next_line(&mut self, shutdown: &AtomicBool) -> Option<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(_) => return None,
            }
        }
    }
}

/// Per-job cancellation handle, registered when the request is read so a
/// `cancel` can reach a job that is still queued. Cancelling trips the
/// budget meter once the job has one; before that, the flag makes the
/// worker cancel the meter the moment it is created.
struct JobCtl {
    cancel: AtomicBool,
    meter: Mutex<Option<Arc<Meter>>>,
}

impl JobCtl {
    fn new() -> JobCtl {
        JobCtl {
            cancel: AtomicBool::new(false),
            meter: Mutex::new(None),
        }
    }

    fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        if let Some(meter) = self.meter.lock().unwrap().as_ref() {
            meter.cancel();
        }
    }
}

struct QueuedJob {
    sink: Arc<ConnSink>,
    conn_id: u64,
    ctl: Arc<JobCtl>,
    req: JobRequest,
}

// ---------------------------------------------------------------------------
// In-flight deduplication
// ---------------------------------------------------------------------------

/// What a finished computation publishes to its coalesced waiters.
#[derive(Clone)]
enum FlightResult {
    Done {
        body: Arc<str>,
        stats: Arc<str>,
        exit: i32,
        reason: Option<BudgetReason>,
    },
    Failed {
        code: i32,
        message: String,
    },
}

struct Flight {
    done: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: FlightResult) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightResult {
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    computations: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    incremental: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    cache: ResultCache,
    inflight: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    running: Mutex<HashMap<(u64, u64), Arc<JobCtl>>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    counters: Counters,
    workers: u64,
    next_conn: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    fn server_counters(&self) -> ServerCounters {
        let cache = self.cache.counters();
        ServerCounters {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            computations: self.counters.computations.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            incremental: self.counters.incremental.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            workers: self.workers,
            cache_entries: cache.entries,
            cache_evictions: cache.evictions,
        }
    }
}

// ---------------------------------------------------------------------------
// The observer
// ---------------------------------------------------------------------------

/// The daemon's observer: always feeds a per-job [`StatsCollector`]; with
/// `"progress": true` additionally streams the same narration lines the
/// CLI prints to stderr, as `progress` events on the client's connection.
struct ServeObserver {
    stats: StatsCollector,
    progress: Option<(Arc<ConnSink>, u64)>,
}

impl ServeObserver {
    fn new(progress: Option<(Arc<ConnSink>, u64)>) -> ServeObserver {
        ServeObserver {
            stats: StatsCollector::new(),
            progress,
        }
    }

    fn emit(&self, text: &str) {
        if let Some((sink, id)) = &self.progress {
            sink.send(&proto::ev_progress(*id, &format!("[progress] {text}")));
        }
    }
}

impl MiningObserver for ServeObserver {
    fn on_phase_start(&self, name: &str) {
        self.stats.on_phase_start(name);
        self.emit(&format!("phase {name} started"));
    }

    fn on_phase_end(&self, name: &str) {
        self.stats.on_phase_end(name);
        self.emit(&format!("phase {name} finished"));
    }

    fn on_level(&self, level: usize, candidates: usize, interesting: usize) {
        self.stats.on_level(level, candidates, interesting);
        self.emit(&format!(
            "level {level}: {candidates} candidates, {interesting} interesting"
        ));
    }

    fn on_iteration(&self, iteration: usize, transversals_tested: usize, counterexample: bool) {
        self.stats
            .on_iteration(iteration, transversals_tested, counterexample);
        self.emit(&format!(
            "iteration {iteration}: {transversals_tested} transversals tested, \
             counterexample: {counterexample}"
        ));
    }

    fn on_fk_calls(&self, count: u64) {
        self.stats.on_fk_calls(count);
    }

    fn on_transversals(&self, count: u64) {
        self.stats.on_transversals(count);
    }

    fn on_nodes(&self, count: u64) {
        self.stats.on_nodes(count);
    }

    fn on_retry(&self, attempt: u32, will_retry: bool) {
        self.emit(&format!(
            "oracle fault, attempt {attempt} (retrying: {will_retry})"
        ));
    }

    fn on_checkpoint(&self, queries_so_far: u64) {
        self.stats.on_checkpoint(queries_so_far);
        self.emit(&format!("checkpoint saved at {queries_so_far} queries"));
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// A job's outcome, ready to serialize as its `result` event.
struct Served {
    tag: CacheTag,
    body: Arc<str>,
    stats: Arc<str>,
    exit: i32,
    reason: Option<BudgetReason>,
    fingerprint: String,
}

type JobFailure = (i32, String);

fn read_input(input: &Input) -> Result<String, JobFailure> {
    match input {
        Input::Inline(text) => Ok(text.clone()),
        Input::Path(path) => {
            std::fs::read_to_string(path).map_err(|e| (4, format!("cannot read {path:?}: {e}")))
        }
    }
}

fn job_error(e: JobError) -> JobFailure {
    match e {
        JobError::Format(e) => (3, e.to_string()),
        JobError::Io(msg) => (4, msg),
        JobError::Fault(msg) => (5, msg),
    }
}

fn exit_for(out: &exec::JobOutput) -> i32 {
    if out.reason.is_some() {
        6
    } else if out.not_dual {
        1
    } else {
        0
    }
}

/// Whether a complete result of this request may be stored: plain runs
/// only. Fault injection, retries, and checkpoint/resume runs are kept
/// out of the cache — their outputs depend on state beyond the content
/// fingerprint (checkpoint files on disk) or are exercises whose point is
/// to run the engine.
fn storeable(req: &JobRequest) -> bool {
    req.cache_mode == proto::CacheMode::Normal
        && req.run.fault_inject.is_none()
        && req.run.retry == 0
        && req.run.checkpoint.is_none()
        && !req.run.resume
}

/// Whether a mine request may be served by incremental re-mining on top
/// of a cached base. Stricter than [`storeable`]: the FUP-style update is
/// proven bit-identical to from-scratch only for *complete* runs over a
/// fixed absolute threshold, so any budget that could cut the run short
/// mid-update, and any relative threshold (which resolves differently on
/// the extended row count), falls back to a cold run.
fn incremental_ok(req: &JobRequest) -> bool {
    storeable(req)
        && req.run.timeout.is_none()
        && req.run.max_queries.is_none()
        && req.run.max_transversals.is_none()
        && matches!(
            req.op,
            OpKind::Mine {
                min_support: Support::Absolute(_),
                ..
            }
        )
}

/// Runs one job end to end; the caller turns the return value into the
/// terminal event. This is the cache/dedup flow described in the module
/// docs.
fn serve_job(
    shared: &Shared,
    req: &JobRequest,
    meter: &Arc<Meter>,
    sink: &Arc<ConnSink>,
) -> Result<Served, JobFailure> {
    let id = req.id;

    // Read and fingerprint the input. Mine keeps its canonical form for
    // the appended-rows probe and the (single) parse.
    let text = read_input(&req.input)?;
    let (content, mine_canon) = match &req.op {
        OpKind::Mine { .. } => {
            let canon = canon::canon_baskets(&text)
                .map_err(|e| (3, e.in_file(req.input.label()).to_string()))?;
            (canon.fingerprint, Some(canon))
        }
        OpKind::Transversals { .. } => (
            canon::fingerprint_hypergraph(&text)
                .map_err(|e| (3, e.in_file(req.input.label()).to_string()))?,
            None,
        ),
        OpKind::Keys { .. } => (
            canon::fingerprint_relation(&text)
                .map_err(|e| (3, e.in_file(req.input.label()).to_string()))?,
            None,
        ),
        OpKind::VerifyDual => {
            let input2 = req.input2.as_ref().expect("parser enforced input2");
            let g_text = read_input(input2)?;
            let fp = canon::fingerprint_dual_pair(&text, &g_text).map_err(|e| {
                // The raw parse error does not say which file; report the
                // one that fails to parse alone.
                let label = if formats::parse_hypergraph(&text).is_err() {
                    req.input.label()
                } else {
                    input2.label()
                };
                (3, e.in_file(label).to_string())
            })?;
            (fp, None)
        }
    };
    let params = req.params_fingerprint();
    let fingerprint = proto::fingerprint_str(params, content);
    sink.send(&proto::ev_accepted(id, &fingerprint));

    // Pre-flight, exactly like the CLI: an already-spent (or
    // already-cancelled) budget reports before any work.
    if let Some(reason) = meter.exceeded() {
        let observer = ServeObserver::new(None);
        observer.stats.set_threads(req.threads.max(1));
        return Ok(Served {
            tag: CacheTag::Miss,
            body: format!("budget exceeded ({reason}) before any work was performed\n").into(),
            stats: observer.stats.to_json(meter, Some(reason)).into(),
            exit: 6,
            reason: Some(reason),
            fingerprint,
        });
    }

    // Warm hit: O(1), no engine, no oracle queries.
    if req.cache_mode != proto::CacheMode::Bypass {
        if let Some(entry) = shared.cache.lookup(params, content) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Served {
                tag: CacheTag::Hit,
                body: Arc::clone(&entry.body),
                stats: Arc::clone(&entry.stats),
                exit: entry.exit,
                reason: None,
                fingerprint,
            });
        }
    }

    // In-flight dedup: identical concurrent requests run once.
    let flight = if req.cache_mode == proto::CacheMode::Normal {
        let mut inflight = shared.inflight.lock().unwrap();
        match inflight.get(&(params, content)) {
            Some(flight) => {
                let flight = Arc::clone(flight);
                drop(inflight);
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                return match flight.wait() {
                    FlightResult::Done {
                        body,
                        stats,
                        exit,
                        reason,
                    } => Ok(Served {
                        tag: CacheTag::Coalesced,
                        body,
                        stats,
                        exit,
                        reason,
                        fingerprint,
                    }),
                    FlightResult::Failed { code, message } => Err((code, message)),
                };
            }
            None => {
                let flight = Arc::new(Flight::new());
                inflight.insert((params, content), Arc::clone(&flight));
                Some(flight)
            }
        }
    } else {
        None
    };

    let outcome = compute_fresh(shared, req, meter, sink, &text, mine_canon, params, content);

    // Publish to waiters and clear the flight — on every path, including
    // failure, or coalesced requests would hang.
    if let Some(flight) = flight {
        flight.publish(match &outcome {
            Ok(served) => FlightResult::Done {
                body: Arc::clone(&served.body),
                stats: Arc::clone(&served.stats),
                exit: served.exit,
                reason: served.reason,
            },
            Err((code, message)) => FlightResult::Failed {
                code: *code,
                message: message.clone(),
            },
        });
        shared.inflight.lock().unwrap().remove(&(params, content));
    }
    outcome
}

/// Runs the engines for a job that neither the cache nor an in-flight
/// twin could answer: the incremental route when a cached base covers a
/// prefix of the input, a cold [`crate::exec`] run otherwise. Complete
/// results of plain runs are stored for the next request.
#[allow(clippy::too_many_arguments)]
fn compute_fresh(
    shared: &Shared,
    req: &JobRequest,
    meter: &Arc<Meter>,
    sink: &Arc<ConnSink>,
    text: &str,
    mine_canon: Option<canon::CanonBaskets>,
    params: u64,
    content: u64,
) -> Result<Served, JobFailure> {
    let id = req.id;
    shared.counters.computations.fetch_add(1, Ordering::Relaxed);

    let threads = if req.threads == 0 { 1 } else { req.threads };
    let observer = ServeObserver::new(req.progress.then(|| (Arc::clone(sink), id)));
    observer.stats.set_threads(threads);
    if let Some(grain) = req.run.grain {
        dualminer_parallel::set_default_grain(grain);
    }
    let note = |text: &str| sink.send(&proto::ev_note(id, text));
    let cx = ExecCtx {
        meter,
        observer: &observer,
        stats: &observer.stats,
        note: &note,
        threads,
    };

    let mut tag = CacheTag::Miss;
    let mut mine_result: Option<(MineArtifacts, u64)> = None;
    let out = match &req.op {
        OpKind::Mine {
            min_support,
            rules,
            maximal,
            segment_rows,
        } => {
            let canon = mine_canon.expect("mine jobs carry their canonical form");
            let opts = MineOpts {
                rules: *rules,
                maximal: *maximal,
            };
            let base = incremental_ok(req)
                .then(|| shared.cache.find_mine_base(params, &canon))
                .flatten();
            if let Some((entry, base_rows)) = base {
                // Incremental re-mining from the cached prefix.
                tag = CacheTag::Incremental;
                shared.counters.incremental.fetch_add(1, Ordering::Relaxed);
                note(&format!(
                    "note: incremental base covers {base_rows} of {} rows",
                    canon.rows.len()
                ));
                let artifacts = entry.mine.as_ref().expect("mine base carries artifacts");
                let universe = Universe::new(canon.names.clone());
                let new_rows = canon.rows_from(base_rows);
                let (out, update) = exec::mine_incremental(
                    &universe,
                    &artifacts.db,
                    &artifacts.sets,
                    new_rows,
                    &opts,
                    &cx,
                );
                mine_result = Some((
                    MineArtifacts {
                        db: update.db,
                        sets: update.frequent,
                    },
                    canon.rows.len() as u64,
                ));
                out
            } else {
                let (universe, db) = canon.build(*segment_rows);
                let sigma = min_support.resolve(db.n_rows());
                let (out, sets) =
                    exec::mine(&universe, &db, sigma, &opts, &req.run, &cx).map_err(job_error)?;
                mine_result = Some((MineArtifacts { db, sets }, canon.rows.len() as u64));
                out
            }
        }
        OpKind::Transversals { algo } => {
            let (universe, h) = formats::parse_hypergraph(text)
                .map_err(|e| (3, e.in_file(req.input.label()).to_string()))?;
            exec::transversals(&universe, &h, *algo, &req.run, &cx).map_err(job_error)?
        }
        OpKind::Keys { fds } => {
            let (universe, rel) = formats::parse_relation(text)
                .map_err(|e| (3, e.in_file(req.input.label()).to_string()))?;
            exec::keys(&universe, &rel, *fds, &req.run, &cx).map_err(job_error)?
        }
        OpKind::VerifyDual => {
            let input2 = req.input2.as_ref().expect("parser enforced input2");
            let g_text = read_input(input2)?;
            exec::verify_dual_pair(text, &g_text, req.input.label(), input2.label())
                .map_err(job_error)?
        }
    };

    let exit = exit_for(&out);
    let stats: Arc<str> = observer.stats.to_json(meter, out.reason).into();
    let body: Arc<str> = out.body.into();
    if storeable(req) && out.reason.is_none() {
        let (mine, rows) = match mine_result {
            Some((artifacts, rows)) => (Some(Arc::new(artifacts)), rows),
            None => (None, 0),
        };
        shared.cache.insert(Entry {
            params,
            content,
            rows,
            body: Arc::clone(&body),
            stats: Arc::clone(&stats),
            exit,
            mine,
        });
    }
    Ok(Served {
        tag,
        body,
        stats,
        exit,
        reason: out.reason,
        fingerprint: proto::fingerprint_str(params, content),
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };
        run_job(&shared, job);
    }
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let QueuedJob {
        sink,
        conn_id,
        ctl,
        req,
    } = job;
    let id = req.id;
    let meter = Arc::new(req.run.budget().start());
    *ctl.meter.lock().unwrap() = Some(Arc::clone(&meter));
    if ctl.cancel.load(Ordering::SeqCst) {
        meter.cancel();
    }

    let outcome = serve_job(shared, &req, &meter, &sink);

    // Deregister (only if this registration is still ours — a reused job
    // id re-registers and must not be unregistered by the older job).
    let mut running = shared.running.lock().unwrap();
    if running
        .get(&(conn_id, id))
        .is_some_and(|cur| Arc::ptr_eq(cur, &ctl))
    {
        running.remove(&(conn_id, id));
    }
    drop(running);

    match outcome {
        Ok(served) => {
            sink.send(&proto::ev_result(
                id,
                served.tag,
                served.reason,
                served.exit,
                &served.fingerprint,
                &served.body,
                &served.stats,
            ));
        }
        Err((code, message)) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            sink.send(&proto::ev_error(id, code, &message));
        }
    }
}

// ---------------------------------------------------------------------------
// Listeners and connections
// ---------------------------------------------------------------------------

fn handle_conn(shared: Arc<Shared>, reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let sink = Arc::new(ConnSink::new(writer));
    let mut lines = LineReader::new(reader);
    while let Some(line) = lines.next_line(&shared.shutdown) {
        if line.trim().is_empty() {
            continue;
        }
        match proto::parse_request(&line) {
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                sink.send(&proto::ev_error(0, 7, &e.message));
            }
            Ok(Request::Job(req)) => {
                shared.counters.jobs.fetch_add(1, Ordering::Relaxed);
                let ctl = Arc::new(JobCtl::new());
                shared
                    .running
                    .lock()
                    .unwrap()
                    .insert((conn_id, req.id), Arc::clone(&ctl));
                shared.queue.lock().unwrap().push_back(QueuedJob {
                    sink: Arc::clone(&sink),
                    conn_id,
                    ctl,
                    req: *req,
                });
                shared.queue_cv.notify_one();
            }
            Ok(Request::Cancel { id, job }) => {
                let found = {
                    let running = shared.running.lock().unwrap();
                    running.get(&(conn_id, job)).map(Arc::clone)
                };
                if let Some(ctl) = &found {
                    ctl.cancel();
                }
                sink.send(&proto::ev_cancelled(id, job, found.is_some()));
            }
            Ok(Request::ServerStats { id }) => {
                sink.send(&proto::ev_server_stats(id, &shared.server_counters()));
            }
            Ok(Request::Shutdown { id }) => {
                sink.send(&proto::ev_shutdown(id));
                shared.begin_shutdown();
                break;
            }
        }
    }
    // Client gone (or shutting down): cancel this connection's jobs so
    // workers are not held by output nobody will read.
    let running = shared.running.lock().unwrap();
    for ((conn, _), ctl) in running.iter() {
        if *conn == conn_id {
            ctl.cancel();
        }
    }
}

fn accept_loop_tcp(shared: Arc<Shared>, listener: TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on TCP listener");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                stream
                    .set_read_timeout(Some(POLL))
                    .expect("set_read_timeout");
                let writer = stream.try_clone().expect("clone TCP stream");
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    handle_conn(shared2, Box::new(stream), Box::new(writer))
                });
                shared.conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(unix)]
fn accept_loop_unix(shared: Arc<Shared>, listener: UnixListener) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on unix listener");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_read_timeout(Some(POLL))
                    .expect("set_read_timeout");
                let writer = stream.try_clone().expect("clone unix stream");
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    handle_conn(shared2, Box::new(stream), Box::new(writer))
                });
                shared.conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`shutdown`](ServerHandle::shutdown) (or send the `shutdown` op) and
/// then [`join`](ServerHandle::join).
pub struct ServerHandle {
    shared: Arc<Shared>,
    /// The bound TCP address (with the real port when `:0` was requested).
    pub tcp_addr: Option<SocketAddr>,
    /// The unix socket path, if one was configured.
    pub unix_path: Option<PathBuf>,
    accepters: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Begins a drain: no new connections or queue pops block; workers
    /// finish the jobs they hold and exit.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the drain to finish: listeners, workers, and every
    /// connection thread join; the unix socket file is removed. Blocks
    /// until [`shutdown`](ServerHandle::shutdown) (or a client `shutdown`
    /// op) has been issued.
    pub fn join(self) {
        for h in self.accepters {
            let _ = h.join();
        }
        for h in self.workers {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for h in conns {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Current server counters (for tests and the CLI banner).
    pub fn counters(&self) -> ServerCounters {
        self.shared.server_counters()
    }
}

/// Binds the listeners and starts the worker pool.
pub fn start(config: &ServeConfig) -> io::Result<ServerHandle> {
    let workers = if config.workers == 0 {
        available_cpus()
    } else {
        config.workers
    };
    let cache_entries = if config.cache_entries == 0 {
        256
    } else {
        config.cache_entries
    };
    let shared = Arc::new(Shared {
        cache: ResultCache::new(cache_entries),
        inflight: Mutex::new(HashMap::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        running: Mutex::new(HashMap::new()),
        conns: Mutex::new(Vec::new()),
        counters: Counters::default(),
        workers: workers as u64,
        next_conn: AtomicU64::new(1),
    });

    let mut accepters = Vec::new();
    let mut tcp_addr = None;
    let default_tcp;
    let tcp = match (&config.tcp, &config.unix) {
        (Some(addr), _) => Some(addr.as_str()),
        (None, None) => {
            default_tcp = "127.0.0.1:0".to_string();
            Some(default_tcp.as_str())
        }
        (None, Some(_)) => None,
    };
    if let Some(addr) = tcp {
        let listener = TcpListener::bind(addr)?;
        tcp_addr = Some(listener.local_addr()?);
        let shared2 = Arc::clone(&shared);
        accepters.push(std::thread::spawn(move || {
            accept_loop_tcp(shared2, listener)
        }));
    }
    let mut unix_path = None;
    if let Some(path) = &config.unix {
        #[cfg(unix)]
        {
            // A stale socket file from a killed daemon blocks the bind;
            // remove it (connecting to it would have failed anyway).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(PathBuf::from(path));
            let shared2 = Arc::clone(&shared);
            accepters.push(std::thread::spawn(move || {
                accept_loop_unix(shared2, listener)
            }));
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            ));
        }
    }

    let worker_handles = (0..workers)
        .map(|_| {
            let shared2 = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(shared2))
        })
        .collect();

    Ok(ServerHandle {
        shared,
        tcp_addr,
        unix_path,
        accepters,
        workers: worker_handles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_and_survives_partial_reads() {
        // A reader that yields one byte at a time with interleaved
        // timeouts, as a socket with a read timeout would.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            tick: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let shutdown = AtomicBool::new(false);
        let mut lines = LineReader::new(Trickle {
            data: b"alpha\r\nbeta\ngamma".to_vec(),
            pos: 0,
            tick: false,
        });
        assert_eq!(lines.next_line(&shutdown).as_deref(), Some("alpha"));
        assert_eq!(lines.next_line(&shutdown).as_deref(), Some("beta"));
        // Trailing data without a newline is dropped at EOF (a client
        // that dies mid-line never sent a complete request).
        assert_eq!(lines.next_line(&shutdown), None);
    }

    #[test]
    fn job_ctl_cancel_trips_the_meter() {
        let ctl = JobCtl::new();
        let meter = Arc::new(dualminer_obs::Budget::default().start());
        *ctl.meter.lock().unwrap() = Some(Arc::clone(&meter));
        assert!(meter.exceeded().is_none());
        ctl.cancel();
        assert_eq!(meter.exceeded(), Some(BudgetReason::Cancelled));
    }
}
