//! The `dualminer serve` daemon.
//!
//! A long-lived process accepting concurrent clients over TCP and/or a
//! unix socket, speaking the line-oriented JSON protocol of
//! [`crate::proto`]. Each connection gets a reader thread; jobs are
//! multiplexed onto a bounded worker pool (the engines underneath fan
//! out further through the deterministic work-stealing scheduler, so the
//! pool bounds *jobs*, not parallelism).
//!
//! The perf core is the flow in [`serve_job`]:
//!
//! 1. canonical content fingerprint (input equivalence, not bytes),
//! 2. exact-key cache lookup — warm hits answer in O(1) with the stored
//!    body and stats, no engine or oracle work,
//! 3. appended-rows probe — a mine request extending a cached input
//!    re-mines incrementally from the cached collection,
//! 4. in-flight dedup — N identical concurrent requests run the engine
//!    once; the rest wait on the flight and share its result,
//! 5. a fresh computation through [`crate::exec`] otherwise.
//!
//! Jobs are cancellable (`cancel` trips the job's budget meter, so the
//! engines stop at their next safe point exactly as a `--timeout` would)
//! and resumable across daemon restarts via the same checkpoint
//! envelopes the CLI uses. Shutdown drains: the queue closes, workers
//! finish what they hold, every connection and listener thread joins.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dualminer_bitset::Universe;
use dualminer_obs::{available_cpus, Budget, BudgetReason, Meter, MiningObserver, StatsCollector};

use crate::cache::{Entry, MineArtifacts, ResultCache};
use crate::canon;
use crate::exec::{self, ExecCtx, JobError, MineOpts};
use crate::formats;
use crate::job::Support;
use crate::persist;
use crate::proto::{self, CacheTag, Input, JobRequest, OpKind, Request, ServerCounters};

/// How long blocking reads and accept polls wait before re-checking the
/// shutdown flag. Bounds shutdown latency without busy-spinning.
const POLL: Duration = Duration::from_millis(100);

/// Default bound on queued jobs (`--max-queue 0` keeps it).
const DEFAULT_MAX_QUEUE: usize = 1024;

/// Default per-connection in-flight job bound.
const DEFAULT_MAX_INFLIGHT_PER_CONN: usize = 64;

/// Default request-frame size bound (8 MiB — inline inputs are legal,
/// unbounded buffering for a client that never sends a newline is not).
const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Default per-connection write deadline: a client that stops reading
/// for this long forfeits its event stream instead of wedging a worker.
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration (the `serve` subcommand's flags).
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// TCP listen address (e.g. `"127.0.0.1:0"`). When both this and
    /// `unix` are `None`, defaults to an ephemeral localhost TCP port.
    pub tcp: Option<String>,
    /// Unix socket path to listen on.
    pub unix: Option<String>,
    /// Worker-pool size (0 = available CPUs).
    pub workers: usize,
    /// Result-cache capacity in entries (0 = default 256).
    pub cache_entries: usize,
    /// Bound on queued jobs; past it new jobs are shed with a typed
    /// `overloaded` error (0 = default 1024).
    pub max_queue: usize,
    /// Bound on queued+running jobs per connection (0 = default 64).
    pub max_inflight_per_conn: usize,
    /// Timeout applied to jobs that request none (None = unlimited).
    pub default_timeout: Option<Duration>,
    /// Upper clamp on any job timeout, requested or defaulted.
    pub max_timeout: Option<Duration>,
    /// Bound on one request frame in bytes (0 = default 8 MiB).
    pub max_frame_bytes: usize,
    /// Bound on admitted input rows (0 = unlimited).
    pub max_rows: u64,
    /// Bound on distinct admitted input items (0 = unlimited).
    pub max_items: u64,
    /// Snapshot the result cache to this path on shutdown (and
    /// periodically, see `cache_snapshot_every`); restore it on boot.
    pub cache_persist: Option<String>,
    /// Additionally snapshot after every N completed computations
    /// (0 = shutdown only). Only meaningful with `cache_persist`.
    pub cache_snapshot_every: u64,
    /// Per-connection write deadline (None = default 30 s).
    pub write_timeout: Option<Duration>,
}

/// The resolved admission-control limits (config defaults applied once,
/// at startup).
#[derive(Clone, Copy, Debug)]
struct Limits {
    max_queue: usize,
    max_inflight_per_conn: usize,
    default_timeout: Option<Duration>,
    max_timeout: Option<Duration>,
    max_frame_bytes: usize,
    max_rows: u64,
    max_items: u64,
    write_timeout: Duration,
}

impl Limits {
    fn from_config(config: &ServeConfig) -> Limits {
        Limits {
            max_queue: if config.max_queue == 0 {
                DEFAULT_MAX_QUEUE
            } else {
                config.max_queue
            },
            max_inflight_per_conn: if config.max_inflight_per_conn == 0 {
                DEFAULT_MAX_INFLIGHT_PER_CONN
            } else {
                config.max_inflight_per_conn
            },
            default_timeout: config.default_timeout,
            max_timeout: config.max_timeout,
            max_frame_bytes: if config.max_frame_bytes == 0 {
                DEFAULT_MAX_FRAME_BYTES
            } else {
                config.max_frame_bytes
            },
            max_rows: config.max_rows,
            max_items: config.max_items,
            // set_write_timeout rejects a zero duration; floor it.
            write_timeout: config
                .write_timeout
                .unwrap_or(DEFAULT_WRITE_TIMEOUT)
                .max(Duration::from_millis(1)),
        }
    }
}

/// Deterministic `retry_after_ms` hint for a shed job: scaled to the
/// backlog per worker, bounded so clients neither hammer nor stall.
fn retry_hint_ms(backlog: u64, workers: u64) -> u64 {
    (25 * (backlog / workers.max(1) + 1)).clamp(25, 5_000)
}

// ---------------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------------

/// The write half of one connection. Workers and the reader thread both
/// emit events here; the mutex makes each line atomic. A failed write
/// marks the connection dead and later sends become no-ops — a client
/// that disconnected (or, with the socket write deadline, stopped
/// reading) mid-job just loses its events, the job itself completes (and
/// populates the cache) regardless.
struct ConnSink {
    writer: Mutex<Box<dyn Write + Send>>,
    alive: AtomicBool,
    counters: Arc<Counters>,
}

impl ConnSink {
    fn new(writer: Box<dyn Write + Send>, counters: Arc<Counters>) -> ConnSink {
        ConnSink {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
            counters,
        }
    }

    fn send(&self, line: &str) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.writer.lock().unwrap();
        if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                // A stalled reader hit the write deadline; it is
                // disconnected like any other dead peer.
                self.counters.write_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            self.alive.store(false, Ordering::Relaxed);
        }
    }
}

/// One read step from a [`LineReader`].
enum Frame {
    /// A complete request line.
    Line(String),
    /// The peer exceeded the per-frame byte bound before sending a
    /// newline. The buffer cannot be resynchronized, so the connection
    /// must be closed after reporting the rejection.
    TooLong,
    /// EOF, hard error, or shutdown.
    Closed,
}

/// Buffered line reading over a raw stream with a read timeout. Unlike
/// `BufReader::read_line`, a timeout between chunks never discards the
/// partial line already buffered — it just re-checks the shutdown flag
/// and keeps reading. Frames are bounded: a peer that streams more than
/// `max_frame` bytes without a newline gets [`Frame::TooLong`] instead of
/// growing the buffer without limit.
struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    max_frame: usize,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max_frame: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
            max_frame,
        }
    }

    /// The next complete line, a frame-too-long rejection, or `Closed` on
    /// EOF, hard error, or shutdown.
    fn next_line(&mut self, shutdown: &AtomicBool) -> Frame {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if pos > self.max_frame {
                    return Frame::TooLong;
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > self.max_frame {
                return Frame::TooLong;
            }
            if shutdown.load(Ordering::SeqCst) {
                return Frame::Closed;
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Frame::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(_) => return Frame::Closed,
            }
        }
    }
}

/// Per-job cancellation handle, registered when the request is read so a
/// `cancel` can reach a job that is still queued. Cancelling trips the
/// budget meter once the job has one; before that, the flag makes the
/// worker cancel the meter the moment it is created.
struct JobCtl {
    cancel: AtomicBool,
    meter: Mutex<Option<Arc<Meter>>>,
}

impl JobCtl {
    fn new() -> JobCtl {
        JobCtl {
            cancel: AtomicBool::new(false),
            meter: Mutex::new(None),
        }
    }

    fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        if let Some(meter) = self.meter.lock().unwrap().as_ref() {
            meter.cancel();
        }
    }
}

struct QueuedJob {
    sink: Arc<ConnSink>,
    conn_id: u64,
    ctl: Arc<JobCtl>,
    req: JobRequest,
    /// The job's budget after the server's timeout policy was applied.
    budget: Budget,
    /// Absolute deadline fixed at admission: time spent queued counts
    /// against the budget, so a job that aged out in the queue is shed
    /// instead of computed for a client that already gave up on it.
    deadline: Option<Instant>,
    /// Whether the server changed the requested timeout (defaulted or
    /// capped). A clamped job skips the incremental route — bit-identity
    /// with a from-scratch run is proven only for unbudgeted runs.
    clamped: bool,
}

// ---------------------------------------------------------------------------
// In-flight deduplication
// ---------------------------------------------------------------------------

/// What a finished computation publishes to its coalesced waiters.
#[derive(Clone)]
enum FlightResult {
    Done {
        body: Arc<str>,
        stats: Arc<str>,
        exit: i32,
        reason: Option<BudgetReason>,
    },
    Failed {
        code: i32,
        message: String,
    },
}

struct Flight {
    done: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: FlightResult) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightResult {
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    computations: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    incremental: AtomicU64,
    errors: AtomicU64,
    busy_workers: AtomicU64,
    open_conns: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_conn_limit: AtomicU64,
    shed_deadline: AtomicU64,
    deadline_clamped: AtomicU64,
    too_large: AtomicU64,
    write_timeouts: AtomicU64,
    persist_saves: AtomicU64,
    persist_restored: AtomicU64,
    persist_errors: AtomicU64,
}

/// Cache-snapshot state, present when `--cache-persist` is configured.
struct PersistState {
    path: PathBuf,
    /// Snapshot after this many completed computations (0 = shutdown
    /// only).
    every: u64,
    /// Computations completed since the last periodic snapshot.
    pending: AtomicU64,
    /// Serializes snapshot writes; the atomic tmp+rename envelope makes
    /// each write crash-safe, this keeps concurrent workers from racing
    /// two writes to the same tmp path.
    write_lock: Mutex<()>,
}

struct Shared {
    cache: ResultCache,
    inflight: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    running: Mutex<HashMap<(u64, u64), Arc<JobCtl>>>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<Counters>,
    workers: u64,
    next_conn: AtomicU64,
    limits: Limits,
    persist: Option<PersistState>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Writes a cache snapshot if persistence is configured. Failures are
    /// counted and logged, never fatal — the in-memory cache stays
    /// authoritative.
    fn snapshot_cache(&self) {
        let Some(persist) = &self.persist else {
            return;
        };
        let _guard = persist.write_lock.lock().unwrap();
        match persist::save_snapshot(&self.cache, &persist.path) {
            Ok(_) => {
                self.counters.persist_saves.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.counters.persist_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "serve: warning: cache snapshot to {:?} failed: {e}",
                    persist.path
                );
            }
        }
    }

    /// Called after each completed computation: advances the periodic
    /// snapshot counter and snapshots when it reaches the cadence.
    fn note_computation(&self) {
        let Some(persist) = &self.persist else {
            return;
        };
        if persist.every == 0 {
            return;
        }
        if persist.pending.fetch_add(1, Ordering::Relaxed) + 1 >= persist.every {
            persist.pending.store(0, Ordering::Relaxed);
            self.snapshot_cache();
        }
    }

    fn server_counters(&self) -> ServerCounters {
        let cache = self.cache.counters();
        ServerCounters {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            computations: self.counters.computations.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            incremental: self.counters.incremental.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            workers: self.workers,
            busy_workers: self.counters.busy_workers.load(Ordering::Relaxed),
            open_conns: self.counters.open_conns.load(Ordering::Relaxed),
            shed_queue_full: self.counters.shed_queue_full.load(Ordering::Relaxed),
            shed_conn_limit: self.counters.shed_conn_limit.load(Ordering::Relaxed),
            shed_deadline: self.counters.shed_deadline.load(Ordering::Relaxed),
            deadline_clamped: self.counters.deadline_clamped.load(Ordering::Relaxed),
            too_large: self.counters.too_large.load(Ordering::Relaxed),
            write_timeouts: self.counters.write_timeouts.load(Ordering::Relaxed),
            persist_saves: self.counters.persist_saves.load(Ordering::Relaxed),
            persist_restored: self.counters.persist_restored.load(Ordering::Relaxed),
            persist_errors: self.counters.persist_errors.load(Ordering::Relaxed),
            cache_entries: cache.entries,
            cache_evictions: cache.evictions,
        }
    }
}

// ---------------------------------------------------------------------------
// The observer
// ---------------------------------------------------------------------------

/// The daemon's observer: always feeds a per-job [`StatsCollector`]; with
/// `"progress": true` additionally streams the same narration lines the
/// CLI prints to stderr, as `progress` events on the client's connection.
struct ServeObserver {
    stats: StatsCollector,
    progress: Option<(Arc<ConnSink>, u64)>,
}

impl ServeObserver {
    fn new(progress: Option<(Arc<ConnSink>, u64)>) -> ServeObserver {
        ServeObserver {
            stats: StatsCollector::new(),
            progress,
        }
    }

    fn emit(&self, text: &str) {
        if let Some((sink, id)) = &self.progress {
            sink.send(&proto::ev_progress(*id, &format!("[progress] {text}")));
        }
    }
}

impl MiningObserver for ServeObserver {
    fn on_phase_start(&self, name: &str) {
        self.stats.on_phase_start(name);
        self.emit(&format!("phase {name} started"));
    }

    fn on_phase_end(&self, name: &str) {
        self.stats.on_phase_end(name);
        self.emit(&format!("phase {name} finished"));
    }

    fn on_level(&self, level: usize, candidates: usize, interesting: usize) {
        self.stats.on_level(level, candidates, interesting);
        self.emit(&format!(
            "level {level}: {candidates} candidates, {interesting} interesting"
        ));
    }

    fn on_iteration(&self, iteration: usize, transversals_tested: usize, counterexample: bool) {
        self.stats
            .on_iteration(iteration, transversals_tested, counterexample);
        self.emit(&format!(
            "iteration {iteration}: {transversals_tested} transversals tested, \
             counterexample: {counterexample}"
        ));
    }

    fn on_fk_calls(&self, count: u64) {
        self.stats.on_fk_calls(count);
    }

    fn on_transversals(&self, count: u64) {
        self.stats.on_transversals(count);
    }

    fn on_nodes(&self, count: u64) {
        self.stats.on_nodes(count);
    }

    fn on_retry(&self, attempt: u32, will_retry: bool) {
        self.emit(&format!(
            "oracle fault, attempt {attempt} (retrying: {will_retry})"
        ));
    }

    fn on_checkpoint(&self, queries_so_far: u64) {
        self.stats.on_checkpoint(queries_so_far);
        self.emit(&format!("checkpoint saved at {queries_so_far} queries"));
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// A job's outcome, ready to serialize as its `result` event.
struct Served {
    tag: CacheTag,
    body: Arc<str>,
    stats: Arc<str>,
    exit: i32,
    reason: Option<BudgetReason>,
    fingerprint: String,
}

/// A job-level failure, carried to the connection as a terminal `error`
/// event. `kind` is the machine-readable tag for typed rejections
/// (`"too_large"`); untyped failures keep the historical event shape.
struct JobFailure {
    code: i32,
    kind: Option<&'static str>,
    message: String,
}

impl JobFailure {
    fn new(code: i32, message: impl Into<String>) -> JobFailure {
        JobFailure {
            code,
            kind: None,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> JobFailure {
        JobFailure {
            code: 3,
            kind: Some("too_large"),
            message: message.into(),
        }
    }
}

fn read_input(input: &Input) -> Result<String, JobFailure> {
    match input {
        Input::Inline(text) => Ok(text.clone()),
        Input::Path(path) => std::fs::read_to_string(path)
            .map_err(|e| JobFailure::new(4, format!("cannot read {path:?}: {e}"))),
    }
}

fn job_error(e: JobError) -> JobFailure {
    match e {
        JobError::Format(e) => JobFailure::new(3, e.to_string()),
        JobError::Io(msg) => JobFailure::new(4, msg),
        JobError::Fault(msg) => JobFailure::new(5, msg),
    }
}

/// Input-size admission: counts non-empty, non-comment lines (rows) and
/// distinct whitespace/comma-separated tokens (items) against the
/// configured bounds, before any canonicalization or parsing touches the
/// text. A cheap linear scan — the point is to reject a 10M-row input
/// with a typed `too_large` error instead of parsing it first.
fn check_input_size(limits: &Limits, label: &str, text: &str) -> Result<(), JobFailure> {
    if limits.max_rows == 0 && limits.max_items == 0 {
        return Ok(());
    }
    let mut rows = 0u64;
    let mut items: HashSet<&str> = HashSet::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        rows += 1;
        if limits.max_rows != 0 && rows > limits.max_rows {
            return Err(JobFailure::too_large(format!(
                "{label}: input has more than {} rows (max-rows)",
                limits.max_rows
            )));
        }
        if limits.max_items != 0 {
            for token in line.split(|c: char| c.is_whitespace() || c == ',') {
                if token.is_empty() {
                    continue;
                }
                items.insert(token);
                if items.len() as u64 > limits.max_items {
                    return Err(JobFailure::too_large(format!(
                        "{label}: input has more than {} distinct items (max-items)",
                        limits.max_items
                    )));
                }
            }
        }
    }
    Ok(())
}

fn exit_for(out: &exec::JobOutput) -> i32 {
    if out.reason.is_some() {
        6
    } else if out.not_dual {
        1
    } else {
        0
    }
}

/// Whether a complete result of this request may be stored: plain runs
/// only. Fault injection, retries, and checkpoint/resume runs are kept
/// out of the cache — their outputs depend on state beyond the content
/// fingerprint (checkpoint files on disk) or are exercises whose point is
/// to run the engine.
fn storeable(req: &JobRequest) -> bool {
    req.cache_mode == proto::CacheMode::Normal
        && req.run.fault_inject.is_none()
        && req.run.retry == 0
        && req.run.checkpoint.is_none()
        && !req.run.resume
}

/// Whether a mine request may be served by incremental re-mining on top
/// of a cached base. Stricter than [`storeable`]: the FUP-style update is
/// proven bit-identical to from-scratch only for *complete* runs over a
/// fixed absolute threshold, so any budget that could cut the run short
/// mid-update, and any relative threshold (which resolves differently on
/// the extended row count), falls back to a cold run.
fn incremental_ok(req: &JobRequest) -> bool {
    storeable(req)
        && req.run.timeout.is_none()
        && req.run.max_queries.is_none()
        && req.run.max_transversals.is_none()
        && matches!(
            req.op,
            OpKind::Mine {
                min_support: Support::Absolute(_),
                ..
            }
        )
}

/// Runs one job end to end; the caller turns the return value into the
/// terminal event. This is the cache/dedup flow described in the module
/// docs.
fn serve_job(
    shared: &Shared,
    req: &JobRequest,
    meter: &Arc<Meter>,
    sink: &Arc<ConnSink>,
    clamped: bool,
) -> Result<Served, JobFailure> {
    let id = req.id;

    // Read and fingerprint the input. Mine keeps its canonical form for
    // the appended-rows probe and the (single) parse. Size bounds are
    // enforced on the raw text, before any canonicalization.
    let text = read_input(&req.input)?;
    check_input_size(&shared.limits, req.input.label(), &text)?;
    let (content, mine_canon) = match &req.op {
        OpKind::Mine { .. } => {
            let canon = canon::canon_baskets(&text)
                .map_err(|e| JobFailure::new(3, e.in_file(req.input.label()).to_string()))?;
            (canon.fingerprint, Some(canon))
        }
        OpKind::Transversals { .. } => (
            canon::fingerprint_hypergraph(&text)
                .map_err(|e| JobFailure::new(3, e.in_file(req.input.label()).to_string()))?,
            None,
        ),
        OpKind::Keys { .. } => (
            canon::fingerprint_relation(&text)
                .map_err(|e| JobFailure::new(3, e.in_file(req.input.label()).to_string()))?,
            None,
        ),
        OpKind::VerifyDual => {
            let input2 = req.input2.as_ref().expect("parser enforced input2");
            let g_text = read_input(input2)?;
            check_input_size(&shared.limits, input2.label(), &g_text)?;
            let fp = canon::fingerprint_dual_pair(&text, &g_text).map_err(|e| {
                // The raw parse error does not say which file; report the
                // one that fails to parse alone.
                let label = if formats::parse_hypergraph(&text).is_err() {
                    req.input.label()
                } else {
                    input2.label()
                };
                JobFailure::new(3, e.in_file(label).to_string())
            })?;
            (fp, None)
        }
    };
    let params = req.params_fingerprint();
    let fingerprint = proto::fingerprint_str(params, content);
    sink.send(&proto::ev_accepted(id, &fingerprint));

    // Pre-flight, exactly like the CLI: an already-spent (or
    // already-cancelled) budget reports before any work.
    if let Some(reason) = meter.exceeded() {
        let observer = ServeObserver::new(None);
        observer.stats.set_threads(req.threads.max(1));
        return Ok(Served {
            tag: CacheTag::Miss,
            body: format!("budget exceeded ({reason}) before any work was performed\n").into(),
            stats: observer.stats.to_json(meter, Some(reason)).into(),
            exit: 6,
            reason: Some(reason),
            fingerprint,
        });
    }

    // Warm hit: O(1), no engine, no oracle queries.
    if req.cache_mode != proto::CacheMode::Bypass {
        if let Some(entry) = shared.cache.lookup(params, content) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Served {
                tag: CacheTag::Hit,
                body: Arc::clone(&entry.body),
                stats: Arc::clone(&entry.stats),
                exit: entry.exit,
                reason: None,
                fingerprint,
            });
        }
    }

    // In-flight dedup: identical concurrent requests run once.
    let flight = if req.cache_mode == proto::CacheMode::Normal {
        let mut inflight = shared.inflight.lock().unwrap();
        match inflight.get(&(params, content)) {
            Some(flight) => {
                let flight = Arc::clone(flight);
                drop(inflight);
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                return match flight.wait() {
                    FlightResult::Done {
                        body,
                        stats,
                        exit,
                        reason,
                    } => Ok(Served {
                        tag: CacheTag::Coalesced,
                        body,
                        stats,
                        exit,
                        reason,
                        fingerprint,
                    }),
                    FlightResult::Failed { code, message } => Err(JobFailure::new(code, message)),
                };
            }
            None => {
                let flight = Arc::new(Flight::new());
                inflight.insert((params, content), Arc::clone(&flight));
                Some(flight)
            }
        }
    } else {
        None
    };

    let outcome = compute_fresh(
        shared, req, meter, sink, clamped, &text, mine_canon, params, content,
    );

    // Publish to waiters and clear the flight — on every path, including
    // failure, or coalesced requests would hang.
    if let Some(flight) = flight {
        flight.publish(match &outcome {
            Ok(served) => FlightResult::Done {
                body: Arc::clone(&served.body),
                stats: Arc::clone(&served.stats),
                exit: served.exit,
                reason: served.reason,
            },
            Err(f) => FlightResult::Failed {
                code: f.code,
                message: f.message.clone(),
            },
        });
        shared.inflight.lock().unwrap().remove(&(params, content));
    }
    outcome
}

/// Runs the engines for a job that neither the cache nor an in-flight
/// twin could answer: the incremental route when a cached base covers a
/// prefix of the input, a cold [`crate::exec`] run otherwise. Complete
/// results of plain runs are stored for the next request.
#[allow(clippy::too_many_arguments)]
fn compute_fresh(
    shared: &Shared,
    req: &JobRequest,
    meter: &Arc<Meter>,
    sink: &Arc<ConnSink>,
    clamped: bool,
    text: &str,
    mine_canon: Option<canon::CanonBaskets>,
    params: u64,
    content: u64,
) -> Result<Served, JobFailure> {
    let id = req.id;
    shared.counters.computations.fetch_add(1, Ordering::Relaxed);

    let threads = if req.threads == 0 { 1 } else { req.threads };
    let observer = ServeObserver::new(req.progress.then(|| (Arc::clone(sink), id)));
    observer.stats.set_threads(threads);
    if let Some(grain) = req.run.grain {
        dualminer_parallel::set_default_grain(grain);
    }
    let note = |text: &str| sink.send(&proto::ev_note(id, text));
    let cx = ExecCtx {
        meter,
        observer: &observer,
        stats: &observer.stats,
        note: &note,
        threads,
    };

    let mut tag = CacheTag::Miss;
    let mut mine_result: Option<(MineArtifacts, u64)> = None;
    let out = match &req.op {
        OpKind::Mine {
            min_support,
            rules,
            maximal,
            segment_rows,
        } => {
            let canon = mine_canon.expect("mine jobs carry their canonical form");
            let opts = MineOpts {
                rules: *rules,
                maximal: *maximal,
            };
            // A server-clamped deadline can cut the FUP update short
            // mid-merge, so a clamped job takes the cold route even when
            // the request itself looks incremental-eligible.
            let base = (incremental_ok(req) && !clamped)
                .then(|| shared.cache.find_mine_base(params, &canon))
                .flatten();
            if let Some((entry, base_rows)) = base {
                // Incremental re-mining from the cached prefix.
                tag = CacheTag::Incremental;
                shared.counters.incremental.fetch_add(1, Ordering::Relaxed);
                note(&format!(
                    "note: incremental base covers {base_rows} of {} rows",
                    canon.rows.len()
                ));
                let artifacts = entry.mine.as_ref().expect("mine base carries artifacts");
                let universe = Universe::new(canon.names.clone());
                let new_rows = canon.rows_from(base_rows);
                let (out, update) = exec::mine_incremental(
                    &universe,
                    &artifacts.db,
                    &artifacts.sets,
                    new_rows,
                    &opts,
                    &cx,
                );
                mine_result = Some((
                    MineArtifacts {
                        db: update.db,
                        sets: update.frequent,
                    },
                    canon.rows.len() as u64,
                ));
                out
            } else {
                let (universe, db) = canon.build(*segment_rows);
                let sigma = min_support.resolve(db.n_rows());
                let (out, sets) =
                    exec::mine(&universe, &db, sigma, &opts, &req.run, &cx).map_err(job_error)?;
                mine_result = Some((MineArtifacts { db, sets }, canon.rows.len() as u64));
                out
            }
        }
        OpKind::Transversals { algo } => {
            let (universe, h) = formats::parse_hypergraph(text)
                .map_err(|e| JobFailure::new(3, e.in_file(req.input.label()).to_string()))?;
            exec::transversals(&universe, &h, *algo, &req.run, &cx).map_err(job_error)?
        }
        OpKind::Keys { fds } => {
            let (universe, rel) = formats::parse_relation(text)
                .map_err(|e| JobFailure::new(3, e.in_file(req.input.label()).to_string()))?;
            exec::keys(&universe, &rel, *fds, &req.run, &cx).map_err(job_error)?
        }
        OpKind::VerifyDual => {
            let input2 = req.input2.as_ref().expect("parser enforced input2");
            let g_text = read_input(input2)?;
            exec::verify_dual_pair(text, &g_text, req.input.label(), input2.label())
                .map_err(job_error)?
        }
    };

    let exit = exit_for(&out);
    let stats: Arc<str> = observer.stats.to_json(meter, out.reason).into();
    let body: Arc<str> = out.body.into();
    if storeable(req) && out.reason.is_none() {
        let (mine, rows) = match mine_result {
            Some((artifacts, rows)) => (Some(Arc::new(artifacts)), rows),
            None => (None, 0),
        };
        shared.cache.insert(Entry {
            params,
            content,
            rows,
            body: Arc::clone(&body),
            stats: Arc::clone(&stats),
            exit,
            mine,
        });
        shared.note_computation();
    }
    Ok(Served {
        tag,
        body,
        stats,
        exit,
        reason: out.reason,
        fingerprint: proto::fingerprint_str(params, content),
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };
        run_job(&shared, job);
    }
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let QueuedJob {
        sink,
        conn_id,
        ctl,
        req,
        budget,
        deadline,
        clamped,
    } = job;
    let id = req.id;
    shared.counters.busy_workers.fetch_add(1, Ordering::Relaxed);

    // The deadline is absolute from admission: time spent queued counts
    // against the job's budget. A job that aged out while waiting starts
    // with zero remaining budget, so the pre-flight check in `serve_job`
    // sheds it (typed `budget:deadline` result) without running an
    // engine for a client that already gave up on it.
    let mut budget = budget;
    if let Some(deadline) = deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() && budget.timeout.is_some_and(|t| !t.is_zero()) {
            shared
                .counters
                .shed_deadline
                .fetch_add(1, Ordering::Relaxed);
        }
        budget.timeout = Some(remaining);
    }
    let meter = Arc::new(budget.start());
    *ctl.meter.lock().unwrap() = Some(Arc::clone(&meter));
    if ctl.cancel.load(Ordering::SeqCst) {
        meter.cancel();
    }

    let outcome = serve_job(shared, &req, &meter, &sink, clamped);

    // Deregister (only if this registration is still ours — a reused job
    // id re-registers and must not be unregistered by the older job).
    let mut running = shared.running.lock().unwrap();
    if running
        .get(&(conn_id, id))
        .is_some_and(|cur| Arc::ptr_eq(cur, &ctl))
    {
        running.remove(&(conn_id, id));
    }
    drop(running);

    match outcome {
        Ok(served) => {
            sink.send(&proto::ev_result(
                id,
                served.tag,
                served.reason,
                served.exit,
                &served.fingerprint,
                &served.body,
                &served.stats,
            ));
        }
        Err(f) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            if f.kind == Some("too_large") {
                shared.counters.too_large.fetch_add(1, Ordering::Relaxed);
            }
            sink.send(&proto::ev_error_typed(id, f.code, f.kind, None, &f.message));
        }
    }
    shared.counters.busy_workers.fetch_sub(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Listeners and connections
// ---------------------------------------------------------------------------

fn handle_conn(shared: Arc<Shared>, reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    shared.counters.open_conns.fetch_add(1, Ordering::Relaxed);
    let sink = Arc::new(ConnSink::new(writer, Arc::clone(&shared.counters)));
    let mut lines = LineReader::new(reader, shared.limits.max_frame_bytes);
    loop {
        let line = match lines.next_line(&shared.shutdown) {
            Frame::Line(line) => line,
            Frame::TooLong => {
                // The oversized frame has no parseable id and the stream
                // cannot be resynchronized; reject and disconnect.
                shared.counters.too_large.fetch_add(1, Ordering::Relaxed);
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                sink.send(&proto::ev_too_large(
                    0,
                    &format!(
                        "request frame exceeds {} bytes (max-frame-bytes)",
                        shared.limits.max_frame_bytes
                    ),
                ));
                break;
            }
            Frame::Closed => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match proto::parse_request(&line) {
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                sink.send(&proto::ev_error(0, 7, &e.message));
            }
            Ok(Request::Job(req)) => {
                let req = *req;
                // Admission control, cheapest check first. A shed job is
                // never counted in `jobs`, registered, or queued — the
                // typed `overloaded` error is its entire lifecycle.
                let inflight = shared
                    .running
                    .lock()
                    .unwrap()
                    .keys()
                    .filter(|(conn, _)| *conn == conn_id)
                    .count();
                if inflight >= shared.limits.max_inflight_per_conn {
                    shared
                        .counters
                        .shed_conn_limit
                        .fetch_add(1, Ordering::Relaxed);
                    sink.send(&proto::ev_overloaded(
                        req.id,
                        retry_hint_ms(inflight as u64, shared.workers),
                        &format!(
                            "connection already has {inflight} jobs in flight \
                             (max-inflight-per-conn {})",
                            shared.limits.max_inflight_per_conn
                        ),
                    ));
                    continue;
                }
                let (budget, clamped) = req
                    .run
                    .budget()
                    .clamp_timeout(shared.limits.default_timeout, shared.limits.max_timeout);
                let mut queue = shared.queue.lock().unwrap();
                if queue.len() >= shared.limits.max_queue {
                    let backlog = queue.len() as u64;
                    drop(queue);
                    shared
                        .counters
                        .shed_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    sink.send(&proto::ev_overloaded(
                        req.id,
                        retry_hint_ms(backlog, shared.workers),
                        &format!(
                            "queue full ({backlog} jobs waiting, max-queue {})",
                            shared.limits.max_queue
                        ),
                    ));
                    continue;
                }
                shared.counters.jobs.fetch_add(1, Ordering::Relaxed);
                if clamped {
                    shared
                        .counters
                        .deadline_clamped
                        .fetch_add(1, Ordering::Relaxed);
                }
                let ctl = Arc::new(JobCtl::new());
                shared
                    .running
                    .lock()
                    .unwrap()
                    .insert((conn_id, req.id), Arc::clone(&ctl));
                let deadline = budget.timeout.map(|t| Instant::now() + t);
                queue.push_back(QueuedJob {
                    sink: Arc::clone(&sink),
                    conn_id,
                    ctl,
                    req,
                    budget,
                    deadline,
                    clamped,
                });
                drop(queue);
                shared.queue_cv.notify_one();
            }
            Ok(Request::Cancel { id, job }) => {
                let found = {
                    let running = shared.running.lock().unwrap();
                    running.get(&(conn_id, job)).map(Arc::clone)
                };
                if let Some(ctl) = &found {
                    ctl.cancel();
                }
                sink.send(&proto::ev_cancelled(id, job, found.is_some()));
            }
            Ok(Request::ServerStats { id }) => {
                sink.send(&proto::ev_server_stats(id, &shared.server_counters()));
            }
            Ok(Request::Shutdown { id }) => {
                sink.send(&proto::ev_shutdown(id));
                shared.begin_shutdown();
                break;
            }
        }
    }
    // Client gone (or shutting down): cancel this connection's jobs so
    // workers are not held by output nobody will read.
    let running = shared.running.lock().unwrap();
    for ((conn, _), ctl) in running.iter() {
        if *conn == conn_id {
            ctl.cancel();
        }
    }
    drop(running);
    shared.counters.open_conns.fetch_sub(1, Ordering::Relaxed);
}

fn accept_loop_tcp(shared: Arc<Shared>, listener: TcpListener) {
    // A listener that cannot go nonblocking would wedge shutdown; better
    // to run without this listener than to panic the accept thread.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("serve: warning: TCP listener disabled (set_nonblocking: {e})");
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                // A socket that cannot take its deadlines is dropped:
                // running it without timeouts would reintroduce the
                // unbounded-stall failure modes the deadlines exist for.
                let prepared = stream
                    .set_read_timeout(Some(POLL))
                    .and_then(|()| stream.set_write_timeout(Some(shared.limits.write_timeout)))
                    .and_then(|()| stream.try_clone());
                let writer = match prepared {
                    Ok(writer) => writer,
                    Err(e) => {
                        eprintln!("serve: warning: dropping connection (socket setup: {e})");
                        continue;
                    }
                };
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    handle_conn(shared2, Box::new(stream), Box::new(writer))
                });
                shared.conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[cfg(unix)]
fn accept_loop_unix(shared: Arc<Shared>, listener: UnixListener) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("serve: warning: unix listener disabled (set_nonblocking: {e})");
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let prepared = stream
                    .set_read_timeout(Some(POLL))
                    .and_then(|()| stream.set_write_timeout(Some(shared.limits.write_timeout)))
                    .and_then(|()| stream.try_clone());
                let writer = match prepared {
                    Ok(writer) => writer,
                    Err(e) => {
                        eprintln!("serve: warning: dropping connection (socket setup: {e})");
                        continue;
                    }
                };
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::spawn(move || {
                    handle_conn(shared2, Box::new(stream), Box::new(writer))
                });
                shared.conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`shutdown`](ServerHandle::shutdown) (or send the `shutdown` op) and
/// then [`join`](ServerHandle::join).
pub struct ServerHandle {
    shared: Arc<Shared>,
    /// The bound TCP address (with the real port when `:0` was requested).
    pub tcp_addr: Option<SocketAddr>,
    /// The unix socket path, if one was configured.
    pub unix_path: Option<PathBuf>,
    accepters: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Begins a drain: no new connections or queue pops block; workers
    /// finish the jobs they hold and exit.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the drain to finish: listeners, workers, and every
    /// connection thread join; a final cache snapshot is written when
    /// persistence is configured; the unix socket file is removed.
    /// Blocks until [`shutdown`](ServerHandle::shutdown) (or a client
    /// `shutdown` op) has been issued.
    pub fn join(self) {
        for h in self.accepters {
            let _ = h.join();
        }
        for h in self.workers {
            let _ = h.join();
        }
        // Workers are done, so the cache is final: snapshot it now.
        self.shared.snapshot_cache();
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for h in conns {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Current server counters (for tests and the CLI banner).
    pub fn counters(&self) -> ServerCounters {
        self.shared.server_counters()
    }
}

/// Binds the listeners and starts the worker pool.
pub fn start(config: &ServeConfig) -> io::Result<ServerHandle> {
    let workers = if config.workers == 0 {
        available_cpus()
    } else {
        config.workers
    };
    let cache_entries = if config.cache_entries == 0 {
        256
    } else {
        config.cache_entries
    };
    let limits = Limits::from_config(config);
    let cache = ResultCache::new(cache_entries);
    let counters = Arc::new(Counters::default());
    let persist = config.cache_persist.as_ref().map(|path| {
        let path = PathBuf::from(path);
        // Restore the previous snapshot; a torn or corrupted file is a
        // warning and a cold start, never a failed boot.
        match persist::load_snapshot(&cache, &path) {
            Ok(n) => counters.persist_restored.store(n, Ordering::Relaxed),
            Err(e) => {
                counters.persist_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("serve: warning: cache snapshot {path:?} unusable, cold-starting: {e}");
            }
        }
        PersistState {
            path,
            every: config.cache_snapshot_every,
            pending: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        }
    });
    let shared = Arc::new(Shared {
        cache,
        inflight: Mutex::new(HashMap::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        running: Mutex::new(HashMap::new()),
        conns: Mutex::new(Vec::new()),
        counters,
        workers: workers as u64,
        next_conn: AtomicU64::new(1),
        limits,
        persist,
    });

    let mut accepters = Vec::new();
    let mut tcp_addr = None;
    let default_tcp;
    let tcp = match (&config.tcp, &config.unix) {
        (Some(addr), _) => Some(addr.as_str()),
        (None, None) => {
            default_tcp = "127.0.0.1:0".to_string();
            Some(default_tcp.as_str())
        }
        (None, Some(_)) => None,
    };
    if let Some(addr) = tcp {
        let listener = TcpListener::bind(addr)?;
        tcp_addr = Some(listener.local_addr()?);
        let shared2 = Arc::clone(&shared);
        accepters.push(std::thread::spawn(move || {
            accept_loop_tcp(shared2, listener)
        }));
    }
    let mut unix_path = None;
    if let Some(path) = &config.unix {
        #[cfg(unix)]
        {
            // A stale socket file from a killed daemon blocks the bind;
            // remove it (connecting to it would have failed anyway).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            unix_path = Some(PathBuf::from(path));
            let shared2 = Arc::clone(&shared);
            accepters.push(std::thread::spawn(move || {
                accept_loop_unix(shared2, listener)
            }));
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            ));
        }
    }

    let worker_handles = (0..workers)
        .map(|_| {
            let shared2 = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(shared2))
        })
        .collect();

    Ok(ServerHandle {
        shared,
        tcp_addr,
        unix_path,
        accepters,
        workers: worker_handles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_and_survives_partial_reads() {
        // A reader that yields one byte at a time with interleaved
        // timeouts, as a socket with a read timeout would.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            tick: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let shutdown = AtomicBool::new(false);
        let mut lines = LineReader::new(
            Trickle {
                data: b"alpha\r\nbeta\ngamma".to_vec(),
                pos: 0,
                tick: false,
            },
            DEFAULT_MAX_FRAME_BYTES,
        );
        let next = |lines: &mut LineReader<Trickle>| match lines.next_line(&shutdown) {
            Frame::Line(line) => Some(line),
            Frame::TooLong => panic!("unexpected TooLong"),
            Frame::Closed => None,
        };
        assert_eq!(next(&mut lines).as_deref(), Some("alpha"));
        assert_eq!(next(&mut lines).as_deref(), Some("beta"));
        // Trailing data without a newline is dropped at EOF (a client
        // that dies mid-line never sent a complete request).
        assert_eq!(next(&mut lines), None);
    }

    #[test]
    fn line_reader_bounds_frame_size() {
        let shutdown = AtomicBool::new(false);
        // An unterminated flood past the cap is rejected without waiting
        // for a newline that may never come.
        let mut lines = LineReader::new(io::Cursor::new(vec![b'x'; 64]), 16);
        assert!(matches!(lines.next_line(&shutdown), Frame::TooLong));
        // A terminated line past the cap is rejected too.
        let mut data = vec![b'y'; 32];
        data.push(b'\n');
        let mut lines = LineReader::new(io::Cursor::new(data), 16);
        assert!(matches!(lines.next_line(&shutdown), Frame::TooLong));
        // At or under the cap passes.
        let mut lines = LineReader::new(io::Cursor::new(b"ok\n".to_vec()), 16);
        assert!(matches!(lines.next_line(&shutdown), Frame::Line(l) if l == "ok"));
    }

    #[test]
    fn job_ctl_cancel_trips_the_meter() {
        let ctl = JobCtl::new();
        let meter = Arc::new(dualminer_obs::Budget::default().start());
        *ctl.meter.lock().unwrap() = Some(Arc::clone(&meter));
        assert!(meter.exceeded().is_none());
        ctl.cancel();
        assert_eq!(meter.exceeded(), Some(BudgetReason::Cancelled));
    }

    #[test]
    fn limits_apply_defaults_and_floors() {
        let limits = Limits::from_config(&ServeConfig::default());
        assert_eq!(limits.max_queue, DEFAULT_MAX_QUEUE);
        assert_eq!(limits.max_inflight_per_conn, DEFAULT_MAX_INFLIGHT_PER_CONN);
        assert_eq!(limits.max_frame_bytes, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(limits.write_timeout, DEFAULT_WRITE_TIMEOUT);
        assert_eq!((limits.max_rows, limits.max_items), (0, 0));
        let limits = Limits::from_config(&ServeConfig {
            max_queue: 3,
            max_inflight_per_conn: 2,
            max_frame_bytes: 128,
            write_timeout: Some(Duration::ZERO),
            ..ServeConfig::default()
        });
        assert_eq!(limits.max_queue, 3);
        assert_eq!(limits.max_inflight_per_conn, 2);
        assert_eq!(limits.max_frame_bytes, 128);
        // Zero write timeouts are invalid at the socket layer; floored.
        assert_eq!(limits.write_timeout, Duration::from_millis(1));
    }

    #[test]
    fn retry_hints_scale_with_backlog_and_stay_bounded() {
        assert_eq!(retry_hint_ms(0, 4), 25);
        assert_eq!(retry_hint_ms(8, 4), 75);
        assert_eq!(retry_hint_ms(1_000_000, 1), 5_000);
        // A zero worker count (impossible, but cheap to defend) does not
        // divide by zero.
        assert_eq!(retry_hint_ms(10, 0), 275);
    }

    #[test]
    fn input_size_checks_reject_typed() {
        let limits = Limits {
            max_rows: 2,
            max_items: 3,
            ..Limits::from_config(&ServeConfig::default())
        };
        assert!(check_input_size(&limits, "in", "a b\n# comment\na c\n").is_ok());
        let err = check_input_size(&limits, "in", "a\nb\nc\n").unwrap_err();
        assert_eq!((err.code, err.kind), (3, Some("too_large")));
        assert!(err.message.contains("max-rows"));
        let err = check_input_size(&limits, "in", "a,b\nc,d\n").unwrap_err();
        assert_eq!((err.code, err.kind), (3, Some("too_large")));
        assert!(err.message.contains("max-items"));
        // Repeated items are distinct-counted, not occurrence-counted.
        assert!(check_input_size(&limits, "in", "a b c\na b c\n").is_ok());
        // Unlimited by default.
        let unlimited = Limits::from_config(&ServeConfig::default());
        assert!(check_input_size(&unlimited, "in", "a\nb\nc\nd\ne\n").is_ok());
    }
}
