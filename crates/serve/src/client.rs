//! A small blocking client for the `dualminer serve` protocol.
//!
//! Used by the `dualminer request` subcommand, the integration tests, and
//! the benchmarks. One [`Conn`] is one connection; requests are sent as
//! protocol lines and events come back as parsed [`Event`]s in server
//! order.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use dualminer_obs::Json;

/// How long [`Conn::next_event`] waits for one line before giving up,
/// unless reconfigured with [`Conn::set_read_timeout`]. Generous: a
/// single event line arrives as soon as the job finishes, and jobs that
/// outlive this are expected to stream progress events.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// The typed payload behind a [`Conn::next_event`] timeout: an
/// [`io::Error`] with kind [`io::ErrorKind::TimedOut`] whose source is
/// this type, carrying the configured timeout so callers can report it
/// (and distinguish a client-side wait expiring from any other I/O
/// failure). Test with [`is_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeoutError {
    /// The read timeout that expired.
    pub after: Duration,
}

impl std::fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no server event within {:.3}s (client read timeout)",
            self.after.as_secs_f64()
        )
    }
}

impl std::error::Error for TimeoutError {}

/// Whether `e` is a client-side read timeout from [`Conn::next_event`].
pub fn is_timeout(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::TimedOut
        && e.get_ref().is_some_and(|inner| inner.is::<TimeoutError>())
}

/// One event line from the server, parsed.
#[derive(Clone, Debug)]
pub struct Event {
    /// The event kind (`accepted`, `progress`, `note`, `result`, `error`,
    /// `cancelled`, `server-stats`, `shutdown`).
    pub kind: String,
    /// The request id the event answers.
    pub id: u64,
    /// The full parsed object, for kind-specific fields.
    pub fields: Json,
}

impl Event {
    /// A string field of the event, if present.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }

    /// An integer field of the event, if present.
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.fields.get(key).and_then(Json::as_int)
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A blocking client connection.
pub struct Conn {
    reader: BufReader<Stream>,
    writer: Stream,
    read_timeout: Duration,
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    /// Connects to a TCP address (`host:port`).
    pub fn connect_tcp(addr: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        let writer = Stream::Tcp(stream.try_clone()?);
        Ok(Conn {
            reader: BufReader::new(Stream::Tcp(stream)),
            writer,
            read_timeout: DEFAULT_READ_TIMEOUT,
        })
    }

    /// Connects to a unix socket path.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> io::Result<Conn> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        let writer = Stream::Unix(stream.try_clone()?);
        Ok(Conn {
            reader: BufReader::new(Stream::Unix(stream)),
            writer,
            read_timeout: DEFAULT_READ_TIMEOUT,
        })
    }

    /// Reconfigures how long [`next_event`](Conn::next_event) waits for a
    /// line before failing with a typed [`TimeoutError`]. A zero duration
    /// is rejected (the socket layer reserves it for "no timeout", which
    /// would reintroduce the unbounded wait this bound exists to prevent).
    pub fn set_read_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        if timeout.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "read timeout must be nonzero",
            ));
        }
        match self.reader.get_ref() {
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout))?,
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(Some(timeout))?,
        }
        self.read_timeout = timeout;
        Ok(())
    }

    /// The currently configured read timeout.
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// Connects to `addr`: a unix socket path when it contains a `/` (or
    /// is prefixed `unix:`), a TCP `host:port` otherwise.
    pub fn connect(addr: &str) -> io::Result<Conn> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            return Conn::connect_unix(path);
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not supported on this platform",
                ));
            }
        }
        #[cfg(unix)]
        if addr.contains('/') {
            return Conn::connect_unix(addr);
        }
        Conn::connect_tcp(addr)
    }

    /// Sends one raw request line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads and parses the next event line. `Ok(None)` means the server
    /// closed the connection.
    pub fn next_event(&mut self) -> io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        TimeoutError {
                            after: self.read_timeout,
                        },
                    ))
                }
                Err(e) => return Err(e),
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields = Json::parse(line.trim_end()).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable server event: {e}"),
                )
            })?;
            let kind = fields
                .get("event")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let id = fields.get("id").and_then(Json::as_uint).unwrap_or(0);
            return Ok(Some(Event { kind, id, fields }));
        }
    }

    /// Sends a request line and collects events until the terminal event
    /// for `id` (`result`, `error`, `cancelled`, `server-stats`, or
    /// `shutdown`) arrives; returns all events for that id, terminal
    /// last. Events for other ids (interleaved jobs on this connection)
    /// are skipped.
    pub fn roundtrip(&mut self, line: &str, id: u64) -> io::Result<Vec<Event>> {
        self.send_line(line)?;
        let mut events = Vec::new();
        loop {
            let Some(event) = self.next_event()? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before a terminal event",
                ));
            };
            if event.id != id {
                continue;
            }
            let terminal = matches!(
                event.kind.as_str(),
                "result" | "error" | "cancelled" | "server-stats" | "shutdown"
            );
            events.push(event);
            if terminal {
                return Ok(events);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_errors_are_typed_and_recognizable() {
        let e = io::Error::new(
            io::ErrorKind::TimedOut,
            TimeoutError {
                after: Duration::from_millis(1500),
            },
        );
        assert!(is_timeout(&e));
        assert!(e.to_string().contains("1.500s"), "{e}");
        // A bare TimedOut from the OS is not a client read timeout.
        assert!(!is_timeout(&io::Error::new(io::ErrorKind::TimedOut, "os")));
        assert!(!is_timeout(&io::Error::other("nope")));
    }
}
