//! Canonical input fingerprints: content addressing for the result cache.
//!
//! Every cacheable input format gets a fingerprint of its *parsed,
//! canonicalized* form — the first-appearance dictionary interleaved with
//! resolved indices and row boundaries, replayed through
//! [`RowFingerprint`] — never of the raw bytes. The fingerprint therefore
//! identifies exactly the information the engines (and the rendered
//! output) can observe: two files that differ only in whitespace,
//! comments, blank lines, or (for formats whose value spellings are
//! dictionary-coded away) cell spellings hash equal, and anything the
//! output could depend on changes the digest.
//!
//! For baskets the canonical form also keeps the per-row *prefix* digests
//! ([`CanonBaskets::prefix`]): a request whose input extends a cached one
//! by appended rows only is recognized because the cached content digest
//! appears verbatim in the new input's prefix ladder, which is what routes
//! the job through incremental re-mining instead of a cold run.

use std::collections::HashMap;

use dualminer_bitset::{AttrSet, Universe};
use dualminer_mining::{TransactionDb, VStoreBuilder};
use dualminer_obs::RowFingerprint;

use crate::formats::{self, FormatError};

/// One rung of the basket prefix ladder: the content digest after row
/// `k`, plus how many item symbols had been interned by then.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowMark {
    /// Fingerprint of the first `k` rows (identical to fingerprinting a
    /// file holding only those rows).
    pub digest: u64,
    /// Symbols interned within the first `k` rows. An appended-rows base
    /// is usable for incremental re-mining only when this equals the item
    /// count of the *extended* input: the FUP-style border update works
    /// over a fixed item universe, so appended rows that introduce new
    /// items fall back to a cold run.
    pub n_items: u32,
}

/// A basket file in canonical form: the first-appearance item dictionary,
/// the index rows, and the prefix-digest ladder.
#[derive(Clone, Debug)]
pub struct CanonBaskets {
    /// Item names in first-appearance order.
    pub names: Vec<String>,
    /// Transactions as item-index rows (empty rows already dropped).
    pub rows: Vec<Vec<usize>>,
    /// Prefix digest after each row; `prefix[k-1]` covers rows `0..k`.
    pub prefix: Vec<RowMark>,
    /// The whole-input content digest (`prefix.last().digest`).
    pub fingerprint: u64,
}

impl CanonBaskets {
    /// Materializes the universe and database, byte-equal to what
    /// [`formats::parse_baskets_reader`] builds from the same input at the
    /// same segment size (mined output is identical at *every* segment
    /// size; the knob only shapes the vertical layout).
    pub fn build(&self, segment_rows: usize) -> (Universe, TransactionDb) {
        let universe = Universe::new(self.names.clone());
        let mut builder = VStoreBuilder::new(segment_rows);
        for row in &self.rows {
            builder.push_row(row.iter().copied());
        }
        (universe, TransactionDb::from_vstore(builder.finish()))
    }

    /// Rows `from..` as [`AttrSet`]s over this input's item universe —
    /// the `new_rows` argument of
    /// [`append_rows_ctl`](dualminer_mining::incremental::append_rows_ctl).
    pub fn rows_from(&self, from: usize) -> Vec<AttrSet> {
        let n = self.names.len();
        self.rows[from..]
            .iter()
            .map(|row| AttrSet::from_indices(n, row.iter().copied()))
            .collect()
    }

    /// Finds the prefix row count whose digest is `digest`, if any — the
    /// probe behind the appended-rows cache route. Only a *proper* prefix
    /// qualifies (an exact match is a warm hit, not an append), and the
    /// prefix must already have interned every item of the full input
    /// (see [`RowMark::n_items`]).
    pub fn append_base(&self, digest: u64) -> Option<usize> {
        let total_items = self.names.len() as u32;
        self.prefix[..self.prefix.len().saturating_sub(1)]
            .iter()
            .position(|mark| mark.digest == digest && mark.n_items == total_items)
            .map(|i| i + 1)
    }
}

/// Parses a basket file into canonical form. Same grammar and dictionary
/// semantics as [`formats::parse_baskets`]: whitespace-separated item
/// names, `#` comments, blank/empty lines skipped, indices assigned in
/// first-appearance order, empty input rejected.
pub fn canon_baskets(text: &str) -> Result<CanonBaskets, FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut rows: Vec<Vec<usize>> = Vec::new();
    let mut prefix: Vec<RowMark> = Vec::new();
    let mut fp = RowFingerprint::new();
    for line in text.lines() {
        let line = formats::strip_comment(line);
        let mut row: Vec<usize> = Vec::new();
        for item in line.split_whitespace() {
            let id = *index.entry(item.to_string()).or_insert_with(|| {
                names.push(item.to_string());
                fp.push_symbol(item);
                names.len() - 1
            });
            fp.push_item(id);
            row.push(id);
        }
        if row.is_empty() {
            continue;
        }
        fp.end_row();
        prefix.push(RowMark {
            digest: fp.digest(),
            n_items: names.len() as u32,
        });
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(FormatError::new("no transactions found"));
    }
    let fingerprint = fp.digest();
    Ok(CanonBaskets {
        names,
        rows,
        prefix,
        fingerprint,
    })
}

/// Replays already-parsed shared-dictionary edges (from
/// [`formats::parse_hypergraph_raw`]) through a [`RowFingerprint`].
///
/// Symbol-interning events are reconstructed from the first-appearance
/// invariant: within one dictionary, index `i` is first used on the edge
/// where `i` equals the number of symbols seen so far. `seen` carries the
/// intern count across calls so a merged-vocabulary pair replays exactly
/// like its parse did. When `with_names` is false the symbol spellings
/// are canonically irrelevant (nothing downstream prints them) and only
/// the intern *events* are recorded.
fn replay_edges(
    fp: &mut RowFingerprint,
    edges: &[Vec<usize>],
    names: &[String],
    seen: &mut usize,
    with_names: bool,
) {
    for edge in edges {
        for &v in edge {
            while *seen <= v {
                if with_names {
                    fp.push_symbol(&names[*seen]);
                } else {
                    fp.push_symbol("");
                }
                *seen += 1;
            }
            fp.push_item(v);
        }
        fp.end_row();
    }
}

/// Canonical fingerprint of a `transversals` input: the parsed
/// hypergraph's dictionary and edge list. Vertex names are *included* —
/// they appear in the rendered transversals.
pub fn fingerprint_hypergraph(text: &str) -> Result<u64, FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let raw = formats::parse_hypergraph_raw(text, &mut names, &mut index)?;
    let mut fp = RowFingerprint::new();
    let mut seen = 0;
    replay_edges(&mut fp, &raw, &names, &mut seen, true);
    Ok(fp.digest())
}

/// Canonical fingerprint of a `verify-dual` input pair: both families'
/// edges over the merged first-appearance vocabulary, separated by a
/// sentinel symbol no parse can produce (the empty string — vertex tokens
/// come from `split_whitespace`). Vertex *spellings* are canonically
/// irrelevant here: the verdict depends only on the two index families,
/// and no name is ever printed.
pub fn fingerprint_dual_pair(f_text: &str, g_text: &str) -> Result<u64, FormatError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let f_raw = formats::parse_hypergraph_raw(f_text, &mut names, &mut index)?;
    let g_raw = formats::parse_hypergraph_raw(g_text, &mut names, &mut index)?;
    let mut fp = RowFingerprint::new();
    let mut seen = 0;
    replay_edges(&mut fp, &f_raw, &names, &mut seen, false);
    fp.push_symbol("");
    fp.end_row();
    replay_edges(&mut fp, &g_raw, &names, &mut seen, false);
    Ok(fp.digest())
}

/// Canonical fingerprint of a `keys` input: the header names (they are
/// printed in every key and FD) plus the dictionary-coded rows. Cell
/// *spellings* are canonically irrelevant — the relation's agree-set
/// structure, and therefore every key, FD, and agree set, depends only on
/// which cells within a column are equal, which is exactly what the
/// per-column first-appearance codes record.
pub fn fingerprint_relation(text: &str) -> Result<u64, FormatError> {
    let (universe, rel) = formats::parse_relation(text)?;
    let mut fp = RowFingerprint::new();
    for i in 0..universe.size() {
        fp.push_symbol(universe.name(i));
    }
    fp.end_row();
    for row in rel.rows() {
        for &code in row {
            fp.push_item(code as usize);
        }
        fp.end_row();
    }
    Ok(fp.digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::parse_baskets;

    const BASE: &str = "milk bread\nbread butter\nmilk\n";

    #[test]
    fn canon_matches_parser() {
        let canon = canon_baskets(BASE).unwrap();
        let (u_ref, db_ref) = parse_baskets(BASE).unwrap();
        let (u, db) = canon.build(dualminer_mining::DEFAULT_SEGMENT_ROWS);
        assert_eq!(u.size(), u_ref.size());
        for i in 0..u.size() {
            assert_eq!(u.name(i), u_ref.name(i));
        }
        assert_eq!(db.rows(), db_ref.rows());
        assert_eq!(canon.prefix.len(), 3);
        assert_eq!(canon.fingerprint, canon.prefix[2].digest);
    }

    #[test]
    fn equivalent_spellings_hash_equal() {
        // Comments, blank lines, and whitespace are not content.
        let noisy = "# breakfast data\nmilk   bread\n\nbread butter # inline\n   milk\n";
        assert_eq!(
            canon_baskets(BASE).unwrap().fingerprint,
            canon_baskets(noisy).unwrap().fingerprint
        );
    }

    #[test]
    fn data_changes_change_the_digest() {
        let base = canon_baskets(BASE).unwrap().fingerprint;
        for variant in [
            "milk bread\nbread butter\nmilk butter\n", // changed row
            "milk bread\nmilk\nbread butter\n",        // reordered rows
            "milk bread\nbread butter\nmilk\neggs\n",  // appended row
            "milk loaf\nloaf butter\nmilk\n",          // renamed item
        ] {
            assert_ne!(
                base,
                canon_baskets(variant).unwrap().fingerprint,
                "{variant}"
            );
        }
    }

    #[test]
    fn append_base_is_recognized() {
        let extended =
            canon_baskets("milk bread\nbread butter\nmilk\nbread milk\nbutter\n").unwrap();
        let base = canon_baskets(BASE).unwrap();
        // The 3-row base is a recognized proper prefix of the 5-row input.
        assert_eq!(extended.append_base(base.fingerprint), Some(3));
        // An exact match is not an append base.
        assert_eq!(extended.append_base(extended.fingerprint), None);
        // Nor is an unrelated digest.
        assert_eq!(extended.append_base(0xdead_beef), None);
        // The appended tail as AttrSets, over the shared universe.
        let tail = extended.rows_from(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].len(), 2);
    }

    #[test]
    fn append_with_new_items_is_not_a_base() {
        // `eggs` first appears in the appended tail: the prefix marks top
        // out below the final item count, so incremental (fixed-universe)
        // re-mining is correctly refused.
        let extended = canon_baskets("milk bread\nbread butter\nmilk\neggs milk\n").unwrap();
        let base = canon_baskets(BASE).unwrap();
        assert_eq!(extended.append_base(base.fingerprint), None);
    }

    #[test]
    fn hypergraph_fingerprints() {
        let a = fingerprint_hypergraph("x y\ny z\nx z\n").unwrap();
        let b = fingerprint_hypergraph("# H\nx   y\n\ny z # e2\nx z\n").unwrap();
        let c = fingerprint_hypergraph("x y\nx z\ny z\n").unwrap();
        let renamed = fingerprint_hypergraph("p y\ny z\np z\n").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Names are content here: they appear in the output.
        assert_ne!(a, renamed);
    }

    #[test]
    fn dual_pair_fingerprints() {
        let a = fingerprint_dual_pair("x y\ny z\n", "y\nx z\n").unwrap();
        // Renaming vertices consistently does not change the verdict and
        // does not change the fingerprint.
        let b = fingerprint_dual_pair("p q\nq r\n", "q\np r\n").unwrap();
        assert_eq!(a, b);
        // Swapping the families does.
        let c = fingerprint_dual_pair("y\nx z\n", "x y\ny z\n").unwrap();
        assert_ne!(a, c);
        // Moving an edge across the separator does.
        let d = fingerprint_dual_pair("x y\n", "y z\ny\nx z\n").unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn relation_fingerprints() {
        let base = fingerprint_relation("dept,role\nsales,mgr\nsales,ic\neng,ic\n").unwrap();
        // Respelled cell values with the same equality structure: equal.
        let respelled = fingerprint_relation("dept,role\nS,boss\nS,w\nE,w\n").unwrap();
        assert_eq!(base, respelled);
        // Renamed header: different (headers are printed).
        let renamed = fingerprint_relation("team,role\nsales,mgr\nsales,ic\neng,ic\n").unwrap();
        assert_ne!(base, renamed);
        // Different equality structure: different.
        let other = fingerprint_relation("dept,role\nsales,mgr\nsales,ic\nsales,ic\n").unwrap();
        assert_ne!(base, other);
    }
}
