//! Property tests for the episode lattice: monotonicity of occurrence
//! (the framework's prerequisite), consistency of mining output, and the
//! subepisode order's transitivity.

use dualminer_episodes::mine::{frequency, mine_episodes, EpisodeClass};
use dualminer_episodes::{Episode, EventSequence};
use proptest::prelude::*;

const ALPHABET: usize = 4;

fn arb_sequence() -> impl Strategy<Value = EventSequence> {
    proptest::collection::vec((0u64..40, 0..ALPHABET), 0..30)
        .prop_map(|pairs| EventSequence::from_pairs(ALPHABET, pairs))
}

fn arb_serial() -> impl Strategy<Value = Episode> {
    proptest::collection::vec(0..ALPHABET, 0..4).prop_map(Episode::serial)
}

fn arb_parallel() -> impl Strategy<Value = Episode> {
    proptest::collection::vec(0..ALPHABET, 0..4).prop_map(Episode::parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occurrence_is_monotone(seq in arb_sequence(), e in arb_serial(), win in 1u64..8) {
        // If e occurs in a window, every immediate subepisode does too —
        // the monotonicity that makes q(r, ·) well-behaved.
        for (_, events) in seq.windows(win) {
            if e.occurs_in(events) {
                for sub in e.immediate_subepisodes() {
                    prop_assert!(sub.occurs_in(events), "{sub} missing where {e} occurs");
                }
            }
        }
    }

    #[test]
    fn frequency_antitone_in_specialization(
        seq in arb_sequence(), e in arb_serial(), win in 1u64..8
    ) {
        let f = frequency(&seq, &e, win);
        for sub in e.immediate_subepisodes() {
            prop_assert!(frequency(&seq, &sub, win) >= f - 1e-12);
        }
    }

    #[test]
    fn subepisode_order_is_transitive(
        a in arb_serial(), b in arb_serial(), c in arb_serial()
    ) {
        if a.is_subepisode_of(&b) && b.is_subepisode_of(&c) {
            prop_assert!(a.is_subepisode_of(&c));
        }
    }

    #[test]
    fn subepisode_reflexive_and_size_monotone(a in arb_serial(), b in arb_parallel()) {
        prop_assert!(a.is_subepisode_of(&a));
        prop_assert!(b.is_subepisode_of(&b));
        if a.is_subepisode_of(&b) {
            prop_assert!(a.rank() <= b.rank());
        }
    }

    #[test]
    fn mining_output_is_consistent(seq in arb_sequence(), win in 1u64..6) {
        for class in [EpisodeClass::Serial, EpisodeClass::Parallel] {
            let run = mine_episodes(&seq, class, win, 0.3);
            // Theorem 10 identity (generic lattice version).
            prop_assert_eq!(run.queries, run.theorem10_count());
            // Frequent really frequent; border really infrequent with
            // frequent subepisodes.
            for (e, f) in &run.frequent {
                prop_assert!((frequency(&seq, e, win) - f).abs() < 1e-12);
                prop_assert!(*f >= 0.3);
            }
            let frequent: std::collections::HashSet<&Episode> =
                run.frequent.iter().map(|(e, _)| e).collect();
            for b in &run.negative_border {
                prop_assert!(frequency(&seq, b, win) < 0.3);
                for sub in b.immediate_subepisodes() {
                    prop_assert!(frequent.contains(&sub));
                }
            }
            // Maximal episodes form an antichain under ⪯.
            for (i, m) in run.maximal.iter().enumerate() {
                for other in &run.maximal[i + 1..] {
                    prop_assert!(!m.is_subepisode_of(other) || m == other);
                    prop_assert!(!other.is_subepisode_of(m) || m == other);
                }
            }
        }
    }

    #[test]
    fn parallel_occurrence_equals_type_subset(
        seq in arb_sequence(), kinds in proptest::collection::vec(0..ALPHABET, 0..4), win in 1u64..6
    ) {
        // A parallel episode occurs iff its type set is a subset of the
        // window's type set — cross-checked against a direct computation.
        let e = Episode::parallel(kinds);
        for (_, events) in seq.windows(win) {
            let present: std::collections::HashSet<usize> =
                events.iter().map(|ev| ev.kind).collect();
            let direct = e.kinds().iter().all(|k| present.contains(k));
            prop_assert_eq!(e.occurs_in(events), direct);
        }
    }
}
