//! Event sequences and sliding windows.

/// One event: a type drawn from the alphabet `{0, …, m−1}` at an integer
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Time stamp (arbitrary integer scale).
    pub time: u64,
    /// Event type.
    pub kind: usize,
}

/// A time-ordered event sequence over an alphabet of `m` event types.
///
/// The WINEPI model of \[21\]: episodes are counted over all windows of a
/// fixed width `win` that overlap the sequence; the *frequency* of an
/// episode is the fraction of windows in which it occurs.
#[derive(Clone, Debug)]
pub struct EventSequence {
    alphabet: usize,
    events: Vec<Event>,
}

impl EventSequence {
    /// Builds a sequence, sorting events by time.
    ///
    /// # Panics
    /// Panics if any event type is `>= alphabet`.
    pub fn new(alphabet: usize, mut events: Vec<Event>) -> Self {
        for e in &events {
            assert!(e.kind < alphabet, "event type {} outside alphabet", e.kind);
        }
        events.sort_by_key(|e| e.time);
        EventSequence { alphabet, events }
    }

    /// Convenience constructor from `(time, kind)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u64, usize)>>(alphabet: usize, pairs: I) -> Self {
        Self::new(
            alphabet,
            pairs
                .into_iter()
                .map(|(time, kind)| Event { time, kind })
                .collect(),
        )
    }

    /// Alphabet size `m`.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The events, time-ordered.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All windows of width `win`, following \[21\]: the window start ranges
    /// over `(t_first − win, t_last]`, so the first and last events are
    /// each covered by exactly `win` windows. Returns `(start, events)`
    /// pairs where `events` are those with `start ≤ time < start + win`.
    ///
    /// Empty for an empty sequence or `win = 0`.
    pub fn windows(&self, win: u64) -> Windows<'_> {
        let (lo, hi) = match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) if win > 0 => (f.time.saturating_sub(win - 1) as i64, l.time as i64),
            _ => (0, -1),
        };
        Windows {
            seq: self,
            win,
            next_start: lo,
            last_start: hi,
            lo_idx: 0,
        }
    }

    /// Number of windows of width `win` (the denominator of episode
    /// frequency).
    pub fn window_count(&self, win: u64) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) if win > 0 => {
                (l.time as i64 - f.time.saturating_sub(win - 1) as i64 + 1) as u64
            }
            _ => 0,
        }
    }
}

/// Iterator over the sliding windows of a sequence.
pub struct Windows<'a> {
    seq: &'a EventSequence,
    win: u64,
    next_start: i64,
    last_start: i64,
    lo_idx: usize,
}

impl<'a> Iterator for Windows<'a> {
    type Item = (i64, &'a [Event]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_start > self.last_start {
            return None;
        }
        let start = self.next_start;
        self.next_start += 1;
        let events = &self.seq.events;
        // Advance the lower index past events before the window.
        while self.lo_idx < events.len() && (events[self.lo_idx].time as i64) < start {
            self.lo_idx += 1;
        }
        let mut hi = self.lo_idx;
        let end = start + self.win as i64;
        while hi < events.len() && (events[hi].time as i64) < end {
            hi += 1;
        }
        Some((start, &events[self.lo_idx..hi]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> EventSequence {
        EventSequence::from_pairs(3, [(10, 0), (11, 2), (13, 1), (14, 0)])
    }

    #[test]
    fn construction_sorts() {
        let s = EventSequence::from_pairs(2, [(5, 1), (2, 0)]);
        assert_eq!(s.events()[0].time, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn alphabet_checked() {
        EventSequence::from_pairs(2, [(0, 2)]);
    }

    #[test]
    fn window_count_matches_iteration() {
        let s = seq();
        for win in 1..=6u64 {
            assert_eq!(
                s.windows(win).count() as u64,
                s.window_count(win),
                "win={win}"
            );
        }
        assert_eq!(s.window_count(0), 0);
        assert_eq!(EventSequence::new(2, vec![]).window_count(3), 0);
    }

    #[test]
    fn edge_windows_cover_extremes() {
        // With win = 3, first window starts at 10−2 = 8, last at 14:
        // 14 − 8 + 1 = 7 windows.
        let s = seq();
        assert_eq!(s.window_count(3), 7);
        let all: Vec<_> = s.windows(3).collect();
        assert_eq!(all.first().unwrap().0, 8);
        assert_eq!(all.last().unwrap().0, 14);
        // The first window [8, 11) contains only the event at t=10.
        assert_eq!(all[0].1.len(), 1);
        // The last window [14, 17) contains only the event at t=14.
        assert_eq!(all.last().unwrap().1.len(), 1);
    }

    #[test]
    fn window_contents_are_in_range() {
        let s = seq();
        for (start, events) in s.windows(2) {
            for e in events {
                assert!((e.time as i64) >= start && (e.time as i64) < start + 2);
            }
        }
    }
}
