//! # dualminer-episodes
//!
//! Frequent-episode discovery in event sequences (Mannila, Toivonen,
//! Verkamo, KDD 1995 — reference \[21\] of the PODS'97 paper), implemented
//! as the paper's designated **boundary case**: a data mining language that
//! fits the `(L, r, q)` framework and the *general* theorems, but is
//! **not representable as sets** (Definition 6), so the transversal
//! machinery of Theorem 7 does not apply.
//!
//! The paper, Section 3:
//!
//! > *"the language of \[21\] used for discovering episodes in sequences
//! > does not satisfy this condition"* … *"In particular the mapping f
//! > must be surjective … This is indeed the case in the episodes of
//! > \[21\]."*
//!
//! and Section 4's Theorem 12 is stated *"for any (L, r, q)"* — so the
//! levelwise analysis still holds here. This crate demonstrates both
//! halves:
//!
//! * [`mine::mine_episodes`] — the levelwise episode miner (WINEPI-style
//!   window counting); its query count satisfies the Theorem 10 identity
//!   and the Theorem 12 bound with the episode lattice's own `rank`,
//!   `width` and `dc(k)` (experiment E13).
//! * [`lattice::representation_obstruction`] — a constructive proof
//!   object: for every universe size, the episode lattice fails the
//!   counting/structure conditions a subset-lattice isomorphism would
//!   impose (sentence count not a power of two, width growing with rank —
//!   impossible in `P(R)` where every sentence has exactly
//!   `n − rank` immediate successors… etc.).
//!
//! Episodes here follow \[21\]'s two basic shapes, over an alphabet of
//! event types `{0, …, m−1}`:
//!
//! * **parallel** episode: a non-empty *set* of event types — occurs in a
//!   window if every type appears;
//! * **serial** episode: a non-empty *sequence* of event types — occurs
//!   if they appear in order (strictly increasing times).
//!
//! # Example
//!
//! ```
//! use dualminer_episodes::mine::{mine_episodes, EpisodeClass};
//! use dualminer_episodes::{Episode, EventSequence};
//!
//! // A repeats→B within two ticks, every five ticks.
//! let seq = EventSequence::from_pairs(
//!     2,
//!     (0..40u64).flat_map(|i| [(5 * i, 0), (5 * i + 1, 1)]),
//! );
//! let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.3);
//! assert!(run.frequent.iter().any(|(e, _)| *e == Episode::serial([0, 1])));
//! // Theorem 10 holds even though this lattice is not a powerset:
//! assert_eq!(run.queries, run.theorem10_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod episode;
pub mod gen;
pub mod lattice;
pub mod mine;
pub mod minepi;
pub mod rules;
mod sequence;

pub use episode::Episode;
pub use sequence::{Event, EventSequence};
