//! Why episodes are **not** representable as sets — the paper's Section 3
//! caveat, made executable.
//!
//! Definition 6 requires a bijection `f : L → P(R)` with
//! `α ⪯ β ⟺ f(α) ⊆ f(β)`. Any such isomorphism forces structural
//! invariants on `L` that the episode lattice violates; this module
//! computes the violations so tests and experiment E13 can assert them:
//!
//! 1. **Cardinality**: `|L|` must be a power of two (the paper: *"the
//!    lattice must be finite, and its size must be a power of 2"*). The
//!    number of serial episodes of size ≤ s over m types is
//!    `Σ_{i≤s} mⁱ` — already 1 + m + m² fails for every m ≥ 1 at s = 2
//!    … except degenerate coincidences, which the checker rules out
//!    case by case.
//! 2. **Successor counts**: in `P(R)`, a sentence of rank `r` has exactly
//!    `n − r` immediate successors — *decreasing* in rank. A serial
//!    episode of size `s` has `(s+1)·m − (duplicates)` immediate
//!    extensions — *increasing* in rank. Already rank 0 vs rank 1
//!    mismatches for m ≥ 2.
//! 3. **Top element**: `P(R)` has a unique maximum; the serial episode
//!    language has none (every episode extends).

/// The concrete obstruction found for a given alphabet size and size cap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obstruction {
    /// Number of serial episodes of size ≤ `max_size`.
    pub sentence_count: u128,
    /// Whether that count is a power of two (a necessary condition for
    /// representability that fails).
    pub count_is_power_of_two: bool,
    /// Immediate-successor count of the bottom (empty) episode within the
    /// capped language: `m`.
    pub bottom_successors: usize,
    /// Immediate-successor count of a rank-1 episode: `2m` (minus
    /// duplicate collapses) — in `P(R)` it would have to be
    /// `bottom_successors − 1`.
    pub rank1_successors: usize,
}

impl Obstruction {
    /// Whether the language could still be a subset lattice — `false`
    /// whenever any invariant fails (which is always, for m ≥ 2).
    pub fn representable(&self) -> bool {
        self.count_is_power_of_two && self.rank1_successors + 1 == self.bottom_successors
    }
}

/// Counts serial episodes of size ≤ `max_size` over `m` event types and
/// the successor structure at the bottom of the lattice.
pub fn representation_obstruction(m: usize, max_size: usize) -> Obstruction {
    assert!(m >= 1 && max_size >= 2, "need m ≥ 1 and size cap ≥ 2");
    // Σ_{i ≤ max_size} m^i, saturating.
    let mut count: u128 = 0;
    let mut pow: u128 = 1;
    for _ in 0..=max_size {
        count = count.saturating_add(pow);
        pow = pow.saturating_mul(m as u128);
    }
    // Immediate successors of ∅ (the singleton serial episodes): m.
    // Immediate successors of the episode ⟨0⟩ within size ≤ max_size:
    // insert one type before or after → 2m sequences; ⟨0,0⟩ is produced
    // by both insertions, so the distinct count is 2m − 1.
    let rank1 = 2 * m - 1;
    Obstruction {
        sentence_count: count,
        count_is_power_of_two: count.is_power_of_two(),
        bottom_successors: m,
        rank1_successors: rank1,
    }
}

/// `width(L, ⪯)` of the size-capped serial-episode lattice: the maximal
/// number of immediate successors of any episode — achieved at the
/// largest episodes, which have `(s+1)·m` extension slots (minus
/// duplicates, bounded below by `s·m`); the framework's Theorem 12 uses
/// this as the `width` factor for episode mining.
pub fn serial_width(m: usize, max_size: usize) -> usize {
    (max_size + 1) * m
}

/// `dc(k)` of the serial-episode lattice: the number of subepisodes
/// (subsequences) of a size-`k` serial episode is at most `2ᵏ`, matching
/// the subset-lattice value — the episode lattice is *locally* set-like
/// below any sentence even though it is not globally a powerset.
pub fn serial_dc(k: usize) -> u128 {
    if k >= 128 {
        u128::MAX
    } else {
        1u128 << k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Episode;

    #[test]
    fn episodes_are_not_representable() {
        for m in 2..8usize {
            for cap in 2..5usize {
                let ob = representation_obstruction(m, cap);
                assert!(
                    !ob.representable(),
                    "m={m} cap={cap}: {ob:?} — the paper says this must fail"
                );
            }
        }
    }

    #[test]
    fn successor_counts_grow_not_shrink() {
        // The heart of the obstruction: bottoms have m successors, rank-1
        // episodes have 2m−1 > m − ... in P(R) successors shrink by one
        // per level.
        let ob = representation_obstruction(3, 4);
        assert_eq!(ob.bottom_successors, 3);
        assert_eq!(ob.rank1_successors, 5);
        assert!(ob.rank1_successors > ob.bottom_successors);
    }

    #[test]
    fn sentence_counts() {
        // m=2, cap=3: 1 + 2 + 4 + 8 = 15, not a power of two.
        let ob = representation_obstruction(2, 3);
        assert_eq!(ob.sentence_count, 15);
        assert!(!ob.count_is_power_of_two);
    }

    #[test]
    fn rank1_successor_count_matches_enumeration() {
        // Enumerate the actual immediate superepisodes of ⟨0⟩ over m=3.
        let m = 3;
        let base = vec![0usize];
        let mut sups = std::collections::HashSet::new();
        for pos in 0..=base.len() {
            for t in 0..m {
                let mut w = base.clone();
                w.insert(pos, t);
                sups.insert(Episode::serial(w));
            }
        }
        assert_eq!(sups.len(), 2 * m - 1);
        // All are genuine immediate superepisodes.
        let e = Episode::serial(base);
        for s in &sups {
            assert!(e.is_subepisode_of(s));
            assert_eq!(s.rank(), 2);
        }
    }

    #[test]
    fn dc_and_width_values() {
        assert_eq!(serial_dc(3), 8);
        assert_eq!(serial_dc(200), u128::MAX);
        assert_eq!(serial_width(4, 3), 16);
    }
}
