//! The levelwise episode miner (WINEPI, \[21\]) inside the paper's
//! framework.
//!
//! The language is the set of serial or parallel episodes over the
//! alphabet, ordered by the subepisode relation; `q` is *frequency ≥
//! min_fr over windows of width win*. Occurrence is inherited by
//! subepisodes, so `q` is monotone and Algorithm 9 applies — and because
//! Theorems 10 and 12 are proved "for any `(L, r, q)`", their statements
//! hold here even though the language is **not** representable as sets
//! (see [`crate::lattice`]). Experiment E13 measures both.

use std::collections::HashSet;

use crate::{Episode, EventSequence};

/// Which episode class to mine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpisodeClass {
    /// Parallel episodes (sets of event types).
    Parallel,
    /// Serial episodes (sequences of event types, repeats allowed).
    Serial,
}

/// Output of one mining run.
#[derive(Clone, Debug)]
pub struct EpisodeMining {
    /// Every frequent episode with its window frequency, level by level.
    pub frequent: Vec<(Episode, f64)>,
    /// The maximal frequent episodes (`MTh` of the instance).
    pub maximal: Vec<Episode>,
    /// The negative border: infrequent candidates whose immediate
    /// subepisodes are all frequent.
    pub negative_border: Vec<Episode>,
    /// Candidates evaluated per level (level = episode size; index 0 is
    /// the empty episode).
    pub candidates_per_level: Vec<usize>,
    /// Frequency evaluations against the sequence — the model-of-
    /// computation cost (each evaluation is one `Is-interesting` query).
    pub queries: u64,
}

impl EpisodeMining {
    /// The Theorem 10 identity `|Th ∪ Bd⁻(Th)|` this run's `queries`
    /// must equal.
    pub fn theorem10_count(&self) -> u64 {
        (self.frequent.len() + self.negative_border.len()) as u64
    }
}

/// The frequency of one episode (fraction of windows containing it).
pub fn frequency(seq: &EventSequence, episode: &Episode, win: u64) -> f64 {
    let total = seq.window_count(win);
    if total == 0 {
        return 0.0;
    }
    let hits = seq
        .windows(win)
        .filter(|(_, events)| episode.occurs_in(events))
        .count() as u64;
    hits as f64 / total as f64
}

/// Mines all frequent episodes of the given class with the levelwise
/// algorithm (Algorithm 9 over the episode lattice).
///
/// Candidate generation extends each frequent episode of size `l` by one
/// event type (appended at the end for serial episodes — each size-(l+1)
/// serial episode is generated exactly once from its length-l prefix;
/// types above the maximum for parallel ones) and prunes candidates with
/// an infrequent immediate subepisode.
pub fn mine_episodes(
    seq: &EventSequence,
    class: EpisodeClass,
    win: u64,
    min_fr: f64,
) -> EpisodeMining {
    assert!(
        (0.0..=1.0).contains(&min_fr) && min_fr > 0.0,
        "min_fr in (0,1]"
    );
    let m = seq.alphabet();
    let mut frequent: Vec<(Episode, f64)> = Vec::new();
    let mut negative: Vec<Episode> = Vec::new();
    let mut candidates_per_level: Vec<usize> = Vec::new();
    let mut queries = 0u64;

    // Level 0: the empty episode — occurs in every window, frequency 1
    // when windows exist. (Kept for framework fidelity: the lattice
    // bottom.)
    let empty = match class {
        EpisodeClass::Parallel => Episode::parallel([]),
        EpisodeClass::Serial => Episode::serial([]),
    };
    candidates_per_level.push(1);
    queries += 1;
    let f0 = frequency(seq, &empty, win);
    if f0 < min_fr {
        return EpisodeMining {
            frequent,
            maximal: vec![],
            negative_border: vec![empty],
            candidates_per_level,
            queries,
        };
    }
    frequent.push((empty.clone(), f0));

    let mut level: Vec<Episode> = vec![empty];
    // Cap sizes: an episode needs `size` events in one window, and a
    // window holds at most `win` time slots... events can share slots for
    // parallel; use the sequence length as a safe upper bound.
    let max_size = seq.len().max(1);
    let mut size = 0usize;
    while !level.is_empty() && size < max_size {
        size += 1;
        let members: HashSet<&Episode> = level.iter().collect();
        let mut next: Vec<Episode> = Vec::new();
        let mut tested = 0usize;
        for base in &level {
            for t in 0..m {
                let cand = match (class, base) {
                    (EpisodeClass::Parallel, Episode::Parallel(v)) => {
                        // Extend with types above the maximum only.
                        if v.last().is_some_and(|&mx| t <= mx) {
                            continue;
                        }
                        let mut w = v.clone();
                        w.push(t);
                        Episode::Parallel(w)
                    }
                    (EpisodeClass::Serial, Episode::Serial(v)) => {
                        let mut w = v.clone();
                        w.push(t);
                        Episode::Serial(w)
                    }
                    _ => unreachable!("class fixed per run"),
                };
                // Prune: every immediate subepisode must be frequent. The
                // generator (drop the last event) is `base` itself.
                if cand
                    .immediate_subepisodes()
                    .iter()
                    .any(|s| !members.contains(s))
                {
                    continue;
                }
                tested += 1;
                queries += 1;
                let f = frequency(seq, &cand, win);
                if f >= min_fr {
                    frequent.push((cand.clone(), f));
                    next.push(cand);
                } else {
                    negative.push(cand);
                }
            }
        }
        if tested > 0 {
            candidates_per_level.push(tested);
        }
        level = next;
    }

    // Maximal episodes: frequent with no frequent immediate superepisode.
    // Sufficient to check against the mined set: every frequent
    // superepisode of size+1 was a candidate (downward closure + complete
    // generation) — for parallel episodes extensions are supersets; for
    // serial episodes a superepisode inserts one event at any position,
    // which our suffix-extension generation does NOT enumerate, so test
    // maximality directly by frequency queries on all +1 insertions.
    let frequent_set: HashSet<&Episode> = frequent.iter().map(|(e, _)| e).collect();
    let mut maximal: Vec<Episode> = Vec::new();
    for (e, _) in &frequent {
        let extended_frequent = match (class, e) {
            (EpisodeClass::Parallel, Episode::Parallel(v)) => (0..m).any(|t| {
                if v.binary_search(&t).is_ok() {
                    return false;
                }
                let mut w = v.clone();
                w.push(t);
                w.sort_unstable();
                frequent_set.contains(&Episode::Parallel(w))
            }),
            (EpisodeClass::Serial, Episode::Serial(v)) => (0..=v.len()).any(|pos| {
                (0..m).any(|t| {
                    let mut w = v.clone();
                    w.insert(pos, t);
                    frequent_set.contains(&Episode::Serial(w))
                })
            }),
            _ => unreachable!(),
        };
        if !extended_frequent {
            maximal.push(e.clone());
        }
    }

    negative.sort();
    EpisodeMining {
        frequent,
        maximal,
        negative_border: negative,
        candidates_per_level,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sequence where A is always followed by B within 2 ticks.
    fn ab_seq() -> EventSequence {
        EventSequence::from_pairs(3, [(0, 0), (1, 1), (4, 0), (5, 1), (8, 0), (9, 1), (12, 2)])
    }

    #[test]
    fn serial_ab_is_frequent() {
        let seq = ab_seq();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.2);
        let ab = Episode::serial([0, 1]);
        assert!(run.frequent.iter().any(|(e, _)| *e == ab));
        // B→A never happens within a window of 3.
        let ba = Episode::serial([1, 0]);
        assert!(!run.frequent.iter().any(|(e, _)| *e == ba));
    }

    #[test]
    fn theorem10_identity_holds_for_episodes() {
        // Theorems 10/12 are stated "for any (L, r, q)" — check the query
        // identity on the episode lattice, which is NOT representable as
        // sets.
        let seq = ab_seq();
        for class in [EpisodeClass::Parallel, EpisodeClass::Serial] {
            for min_fr in [0.1, 0.3, 0.6] {
                let run = mine_episodes(&seq, class, 3, min_fr);
                assert_eq!(
                    run.queries,
                    run.theorem10_count(),
                    "{class:?} min_fr={min_fr}"
                );
            }
        }
    }

    #[test]
    fn frequencies_match_direct_count() {
        let seq = ab_seq();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.1);
        for (e, f) in &run.frequent {
            assert!((frequency(&seq, e, 3) - f).abs() < 1e-12, "{e}");
            assert!(*f >= 0.1);
        }
        for e in &run.negative_border {
            assert!(frequency(&seq, e, 3) < 0.1, "{e}");
        }
    }

    #[test]
    fn maximal_episodes_are_maximal() {
        let seq = ab_seq();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.2);
        assert!(!run.maximal.is_empty());
        let frequent: Vec<&Episode> = run.frequent.iter().map(|(e, _)| e).collect();
        for max in &run.maximal {
            for other in &frequent {
                if *other != max {
                    assert!(
                        !max.is_subepisode_of(other),
                        "{max} is under frequent {other}"
                    );
                }
            }
        }
    }

    #[test]
    fn negative_border_subepisodes_are_frequent() {
        let seq = ab_seq();
        let run = mine_episodes(&seq, EpisodeClass::Parallel, 3, 0.2);
        let frequent: HashSet<&Episode> = run.frequent.iter().map(|(e, _)| e).collect();
        for b in &run.negative_border {
            for sub in b.immediate_subepisodes() {
                assert!(frequent.contains(&sub), "{b}: subepisode {sub} missing");
            }
        }
    }

    #[test]
    fn empty_sequence_mines_empty_theory() {
        let seq = EventSequence::new(3, vec![]);
        let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.5);
        assert!(run.frequent.is_empty());
        assert_eq!(run.negative_border.len(), 1);
        assert_eq!(run.queries, 1);
    }

    #[test]
    fn serial_repeats_mined() {
        // A A A … every tick: A→A is frequent in windows of 3.
        let seq = EventSequence::from_pairs(1, (0..20u64).map(|t| (t, 0)));
        let run = mine_episodes(&seq, EpisodeClass::Serial, 3, 0.5);
        assert!(run
            .frequent
            .iter()
            .any(|(e, _)| *e == Episode::serial([0, 0])));
    }
}
