//! MINEPI: minimal-occurrence counting, the second frequency measure of
//! \[21\].
//!
//! WINEPI counts *windows*; MINEPI counts **minimal occurrences**: time
//! intervals `[ts, te]` such that the episode occurs within the interval
//! but in no proper sub-interval. Minimal occurrences localize each
//! instance of a pattern exactly and are the basis for rules with *two*
//! time bounds ("if A→B within 5 ticks, then C within 20"). Support =
//! number of minimal occurrences (optionally with a maximum span).
//!
//! The measure is still *anti-monotone under the subepisode order once a
//! span bound is fixed*: every minimal occurrence of `β` within span `w`
//! contains an occurrence of each subepisode within `w` — so the
//! levelwise machinery applies unchanged, which is what
//! [`mine_episodes_minepi`] does.

use std::collections::HashSet;

use crate::{Episode, EventSequence};

/// A minimal occurrence: the closed time interval `[start, end]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Time of the first matched event.
    pub start: u64,
    /// Time of the last matched event (`start == end` for rank-1
    /// episodes).
    pub end: u64,
}

impl Occurrence {
    /// The span `end − start` (0 for single events).
    pub fn span(&self) -> u64 {
        self.end - self.start
    }
}

/// All minimal occurrences of an episode, in increasing start time.
///
/// `O(rank · events)` for serial episodes via the classic
/// earliest-transversal scan: for each end position, the latest possible
/// start is found greedily from the right; an occurrence is minimal iff
/// no later start yields the same end and no earlier end the same start.
/// Parallel episodes reduce to the same scan over their type multiset in
/// any order, tracked per-type.
pub fn minimal_occurrences(seq: &EventSequence, episode: &Episode) -> Vec<Occurrence> {
    match episode {
        Episode::Serial(kinds) => serial_minimal_occurrences(seq, kinds),
        Episode::Parallel(kinds) => parallel_minimal_occurrences(seq, kinds),
    }
}

fn serial_minimal_occurrences(seq: &EventSequence, kinds: &[usize]) -> Vec<Occurrence> {
    if kinds.is_empty() {
        return vec![];
    }
    let events = seq.events();
    let mut out: Vec<Occurrence> = Vec::new();
    // For each possible *end* event matching the last type, compute the
    // latest start: walk backwards matching the episode right-to-left
    // greedily (latest possible positions). The resulting [start, end] is
    // a candidate; keep it if its start is strictly later than the
    // previous kept occurrence's start (standard minimality filter when
    // scanning ends in increasing order).
    let mut last_kept_start: Option<u64> = None;
    for (end_idx, end_event) in events.iter().enumerate() {
        if end_event.kind != kinds[kinds.len() - 1] {
            continue;
        }
        // Match the remaining kinds right-to-left, latest-first, with
        // strictly decreasing times.
        let mut need = kinds.len() - 1;
        let mut last_time = end_event.time;
        let mut start_time = end_event.time;
        let mut i = end_idx;
        let mut ok = true;
        while need > 0 {
            let mut found = false;
            while i > 0 {
                i -= 1;
                let e = events[i];
                if e.kind == kinds[need - 1] && e.time < last_time {
                    last_time = e.time;
                    start_time = e.time;
                    found = true;
                    break;
                }
            }
            if !found {
                ok = false;
                break;
            }
            need -= 1;
        }
        if !ok {
            continue;
        }
        // Minimality: strictly increasing starts as ends increase. Equal
        // or earlier start means the previous occurrence is nested inside
        // this one's interval (or duplicates it).
        if last_kept_start.map_or(true, |s| start_time > s) {
            out.push(Occurrence {
                start: start_time,
                end: end_event.time,
            });
            last_kept_start = Some(start_time);
        }
    }
    out
}

fn parallel_minimal_occurrences(seq: &EventSequence, kinds: &[usize]) -> Vec<Occurrence> {
    if kinds.is_empty() {
        return vec![];
    }
    let events = seq.events();
    let wanted: HashSet<usize> = kinds.iter().copied().collect();
    let mut out: Vec<Occurrence> = Vec::new();
    let mut last_kept_start: Option<u64> = None;
    // Sliding two-pointer: for each end index, the latest start such that
    // all wanted types appear in [start, end].
    let mut counts: Vec<usize> = vec![0; seq.alphabet()];
    let mut covered = 0usize;
    let mut lo = 0usize;
    for (hi, e) in events.iter().enumerate() {
        if wanted.contains(&e.kind) {
            counts[e.kind] += 1;
            if counts[e.kind] == 1 {
                covered += 1;
            }
        }
        if covered < wanted.len() {
            continue;
        }
        // Shrink from the left while still covered.
        while lo <= hi {
            let f = events[lo];
            if wanted.contains(&f.kind) && counts[f.kind] == 1 {
                break;
            }
            if wanted.contains(&f.kind) {
                counts[f.kind] -= 1;
            }
            lo += 1;
        }
        let start_time = events[lo].time;
        if last_kept_start.map_or(true, |s| start_time > s) {
            out.push(Occurrence {
                start: start_time,
                end: e.time,
            });
            last_kept_start = Some(start_time);
        }
    }
    out
}

/// MINEPI support: minimal occurrences with span ≤ `max_span`.
pub fn minepi_support(seq: &EventSequence, episode: &Episode, max_span: u64) -> usize {
    if episode.rank() == 0 {
        // The empty episode occurs vacuously everywhere; by convention its
        // support is the number of events (enough to top any threshold).
        return seq.len();
    }
    minimal_occurrences(seq, episode)
        .into_iter()
        .filter(|o| o.span() <= max_span)
        .count()
}

/// Output of a MINEPI mining run.
#[derive(Clone, Debug)]
pub struct MinepiMining {
    /// Frequent episodes with their minimal-occurrence counts.
    pub frequent: Vec<(Episode, usize)>,
    /// The negative border.
    pub negative_border: Vec<Episode>,
    /// Support evaluations (Theorem 10's count for this instance).
    pub queries: u64,
}

/// Levelwise mining under the MINEPI measure: serial episodes whose
/// bounded-span minimal-occurrence count is ≥ `min_count`.
pub fn mine_episodes_minepi(seq: &EventSequence, max_span: u64, min_count: usize) -> MinepiMining {
    assert!(min_count > 0, "min_count must be positive");
    let m = seq.alphabet();
    let mut frequent: Vec<(Episode, usize)> = Vec::new();
    let mut negative: Vec<Episode> = Vec::new();
    let mut queries = 0u64;

    let empty = Episode::serial([]);
    queries += 1;
    let s0 = minepi_support(seq, &empty, max_span);
    if s0 < min_count {
        return MinepiMining {
            frequent,
            negative_border: vec![empty],
            queries,
        };
    }
    frequent.push((empty.clone(), s0));

    let mut level: Vec<Episode> = vec![empty];
    let max_size = seq.len().max(1);
    let mut size = 0usize;
    while !level.is_empty() && size < max_size {
        size += 1;
        let members: HashSet<&Episode> = level.iter().collect();
        let mut next = Vec::new();
        for base in &level {
            let Episode::Serial(v) = base else {
                unreachable!()
            };
            for t in 0..m {
                let mut w = v.clone();
                w.push(t);
                let cand = Episode::Serial(w);
                if cand
                    .immediate_subepisodes()
                    .iter()
                    .any(|s| !members.contains(s))
                {
                    continue;
                }
                queries += 1;
                let supp = minepi_support(seq, &cand, max_span);
                if supp >= min_count {
                    frequent.push((cand.clone(), supp));
                    next.push(cand);
                } else {
                    negative.push(cand);
                }
            }
        }
        level = next;
    }
    negative.sort();
    MinepiMining {
        frequent,
        negative_border: negative,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> EventSequence {
        // A B A B C at times 0,1,4,5,6.
        EventSequence::from_pairs(3, [(0, 0), (1, 1), (4, 0), (5, 1), (6, 2)])
    }

    #[test]
    fn serial_minimal_occurrences_basic() {
        let s = seq();
        let occ = minimal_occurrences(&s, &Episode::serial([0, 1]));
        // A→B occurs minimally at [0,1] and [4,5]; [0,5] is not minimal.
        assert_eq!(
            occ,
            vec![
                Occurrence { start: 0, end: 1 },
                Occurrence { start: 4, end: 5 }
            ]
        );
    }

    #[test]
    fn serial_spanning_occurrence() {
        let s = seq();
        let occ = minimal_occurrences(&s, &Episode::serial([1, 0]));
        // B→A only as [1,4].
        assert_eq!(occ, vec![Occurrence { start: 1, end: 4 }]);
    }

    #[test]
    fn parallel_minimal_occurrences_basic() {
        let s = seq();
        let occ = minimal_occurrences(&s, &Episode::parallel([0, 1]));
        // {A,B} minimal windows: [0,1], [1,4]? — the two-pointer keeps
        // [0,1], then for end=4 (A) start shrinks to 1 (B at 1): [1,4],
        // then end=5 (B) start 4: [4,5].
        assert_eq!(
            occ,
            vec![
                Occurrence { start: 0, end: 1 },
                Occurrence { start: 1, end: 4 },
                Occurrence { start: 4, end: 5 }
            ]
        );
    }

    #[test]
    fn span_bound_filters() {
        let s = seq();
        let e = Episode::serial([1, 0]); // span 3 occurrence
        assert_eq!(minepi_support(&s, &e, 10), 1);
        assert_eq!(minepi_support(&s, &e, 2), 0);
    }

    #[test]
    fn occurrences_are_genuine_and_minimal() {
        let s = seq();
        for e in [
            Episode::serial([0, 1]),
            Episode::serial([0, 1, 2]),
            Episode::parallel([0, 2]),
        ] {
            for o in minimal_occurrences(&s, &e) {
                // The episode occurs within [start, end]…
                let window: Vec<_> = s
                    .events()
                    .iter()
                    .copied()
                    .filter(|ev| ev.time >= o.start && ev.time <= o.end)
                    .collect();
                assert!(e.occurs_in(&window), "{e} not in {o:?}");
                // …but not when either endpoint is trimmed off.
                let trimmed_left: Vec<_> = window
                    .iter()
                    .copied()
                    .filter(|ev| ev.time > o.start)
                    .collect();
                let trimmed_right: Vec<_> = window
                    .iter()
                    .copied()
                    .filter(|ev| ev.time < o.end)
                    .collect();
                assert!(
                    !e.occurs_in(&trimmed_left),
                    "{e} still in left-trim of {o:?}"
                );
                assert!(
                    !e.occurs_in(&trimmed_right),
                    "{e} still in right-trim of {o:?}"
                );
            }
        }
    }

    #[test]
    fn minepi_mining_matches_direct_supports() {
        let mut rng_seq = Vec::new();
        for i in 0..60u64 {
            rng_seq.push((i, (i % 3) as usize));
        }
        let s = EventSequence::from_pairs(3, rng_seq);
        let run = mine_episodes_minepi(&s, 4, 5);
        assert_eq!(
            run.queries,
            (run.frequent.len() + run.negative_border.len()) as u64
        );
        for (e, supp) in &run.frequent {
            assert_eq!(minepi_support(&s, e, 4), *supp, "{e}");
            assert!(*supp >= 5);
        }
        for e in &run.negative_border {
            assert!(minepi_support(&s, e, 4) < 5, "{e}");
        }
        // The repeating A B C pattern must be found.
        assert!(run
            .frequent
            .iter()
            .any(|(e, _)| *e == Episode::serial([0, 1, 2])));
    }

    #[test]
    fn mining_is_complete_against_brute_force() {
        // The levelwise prune assumes MINEPI support is anti-monotone
        // under the subepisode order; verify completeness by brute force
        // over all serial episodes of size ≤ 3.
        let s =
            EventSequence::from_pairs(2, [(0, 0), (1, 1), (2, 0), (5, 1), (6, 0), (7, 1), (9, 0)]);
        let (max_span, min_count) = (3u64, 2usize);
        let run = mine_episodes_minepi(&s, max_span, min_count);
        let mined: HashSet<&Episode> = run.frequent.iter().map(|(e, _)| e).collect();
        let mut all: Vec<Vec<usize>> = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for base in &all {
                for t in 0..2usize {
                    let mut w = base.clone();
                    w.push(t);
                    next.push(w);
                }
            }
            all.extend(next.clone());
            all = all
                .into_iter()
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
        }
        for kinds in all {
            let e = Episode::serial(kinds);
            if e.rank() > 3 {
                continue;
            }
            let frequent = minepi_support(&s, &e, max_span) >= min_count;
            assert_eq!(
                frequent,
                mined.contains(&e),
                "{e}: brute-force {frequent} vs mined {}",
                mined.contains(&e)
            );
        }
    }

    #[test]
    fn empty_sequence() {
        let s = EventSequence::new(2, vec![]);
        assert!(minimal_occurrences(&s, &Episode::serial([0])).is_empty());
        let run = mine_episodes_minepi(&s, 3, 1);
        assert!(run.frequent.is_empty());
    }
}
