//! Episodes and their specialization relation.

use std::fmt;

use crate::sequence::Event;

/// An episode over an event-type alphabet, in the two basic shapes of
/// \[21\].
///
/// The specialization relation of the mining framework is the
/// *subepisode* order: `α ⪯ β` (β more specific) iff every occurrence of
/// β contains one of α. Concretely: a parallel episode is a subepisode of
/// another iff its type set is a subset; a serial episode is a subepisode
/// of another iff its type sequence is a subsequence; and a parallel
/// episode is a subepisode of a serial one iff its types can be matched
/// into the sequence (the serial order only adds constraints).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Episode {
    /// All listed event types occur in the window, in any order. The type
    /// list is kept sorted and duplicate-free.
    Parallel(Vec<usize>),
    /// The listed event types occur at strictly increasing times.
    /// Repeats are allowed (`A → A` is meaningful).
    Serial(Vec<usize>),
}

impl Episode {
    /// A parallel episode; sorts and de-duplicates the types.
    pub fn parallel<I: IntoIterator<Item = usize>>(kinds: I) -> Self {
        let mut v: Vec<usize> = kinds.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Episode::Parallel(v)
    }

    /// A serial episode (order preserved verbatim).
    pub fn serial<I: IntoIterator<Item = usize>>(kinds: I) -> Self {
        Episode::Serial(kinds.into_iter().collect())
    }

    /// The episode's size (number of events it requires) — the `rank` of
    /// the framework's lattice vocabulary.
    pub fn rank(&self) -> usize {
        match self {
            Episode::Parallel(v) | Episode::Serial(v) => v.len(),
        }
    }

    /// The event types mentioned.
    pub fn kinds(&self) -> &[usize] {
        match self {
            Episode::Parallel(v) | Episode::Serial(v) => v,
        }
    }

    /// Whether the episode occurs in a time-ordered slice of events (one
    /// window).
    pub fn occurs_in(&self, window: &[Event]) -> bool {
        match self {
            Episode::Parallel(kinds) => kinds.iter().all(|k| window.iter().any(|e| e.kind == *k)),
            Episode::Serial(kinds) => {
                // Greedy subsequence matching with strictly increasing
                // times: after matching at time t, the next event must
                // come strictly later.
                let mut last_time: Option<u64> = None;
                let mut idx = 0usize;
                for need in kinds {
                    let mut found = false;
                    while idx < window.len() {
                        let e = window[idx];
                        idx += 1;
                        if e.kind == *need && last_time.map_or(true, |t| e.time > t) {
                            last_time = Some(e.time);
                            found = true;
                            break;
                        }
                    }
                    if !found {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The subepisode test: `self ⪯ other` (is `self` more general)?
    ///
    /// Same-shape comparisons use subset / subsequence; a parallel episode
    /// is also a subepisode of a serial one containing its types; a serial
    /// episode of length ≥ 2 is never a subepisode of a parallel one (the
    /// order constraint cannot be implied).
    pub fn is_subepisode_of(&self, other: &Episode) -> bool {
        match (self, other) {
            (Episode::Parallel(a), Episode::Parallel(b)) => {
                a.iter().all(|k| b.binary_search(k).is_ok())
            }
            (Episode::Serial(a), Episode::Serial(b)) => is_subsequence(a, b),
            (Episode::Parallel(a), Episode::Serial(b)) => {
                // Every type of a must be available in b (with
                // multiplicity 1 since a is a set).
                a.iter().all(|k| b.contains(k))
            }
            (Episode::Serial(a), Episode::Parallel(b)) => {
                // A length-1 serial episode is the same constraint as the
                // singleton parallel episode.
                a.len() == 1 && b.contains(&a[0])
            }
        }
    }

    /// Immediate generalizations: episodes of rank−1 obtained by deleting
    /// one event. For a parallel episode, drop one type; for a serial
    /// episode, drop one position (deduplicated).
    pub fn immediate_subepisodes(&self) -> Vec<Episode> {
        let mut subs = Vec::new();
        match self {
            Episode::Parallel(v) => {
                for i in 0..v.len() {
                    let mut w = v.clone();
                    w.remove(i);
                    subs.push(Episode::Parallel(w));
                }
            }
            Episode::Serial(v) => {
                for i in 0..v.len() {
                    let mut w = v.clone();
                    w.remove(i);
                    let e = Episode::Serial(w);
                    if !subs.contains(&e) {
                        subs.push(e);
                    }
                }
            }
        }
        subs
    }

    /// Renders e.g. `{A,C}` (parallel) or `A→B→A` (serial) with letter
    /// names for alphabets ≤ 26 (indices otherwise).
    pub fn display(&self) -> String {
        let name = |k: &usize| {
            if *k < 26 {
                ((b'A' + *k as u8) as char).to_string()
            } else {
                k.to_string()
            }
        };
        match self {
            Episode::Parallel(v) => {
                format!("{{{}}}", v.iter().map(name).collect::<Vec<_>>().join(","))
            }
            Episode::Serial(v) => v.iter().map(name).collect::<Vec<_>>().join("→"),
        }
    }
}

impl fmt::Display for Episode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

/// Whether `a` is a subsequence of `b`.
fn is_subsequence(a: &[usize], b: &[usize]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.any(|y| y == x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSequence;

    fn window(pairs: &[(u64, usize)]) -> Vec<Event> {
        EventSequence::from_pairs(10, pairs.iter().copied())
            .events()
            .to_vec()
    }

    #[test]
    fn parallel_occurrence() {
        let w = window(&[(1, 0), (2, 2), (3, 1)]);
        assert!(Episode::parallel([0, 1]).occurs_in(&w));
        assert!(Episode::parallel([2]).occurs_in(&w));
        assert!(!Episode::parallel([3]).occurs_in(&w));
        assert!(Episode::parallel([]).occurs_in(&w));
    }

    #[test]
    fn serial_occurrence_requires_order() {
        let w = window(&[(1, 0), (2, 2), (3, 1)]);
        assert!(Episode::serial([0, 1]).occurs_in(&w));
        assert!(!Episode::serial([1, 0]).occurs_in(&w));
        assert!(Episode::serial([0, 2, 1]).occurs_in(&w));
    }

    #[test]
    fn serial_repeats_need_distinct_times() {
        let w = window(&[(1, 0), (1, 0)]); // two A's at the same instant
        assert!(!Episode::serial([0, 0]).occurs_in(&w));
        let w2 = window(&[(1, 0), (2, 0)]);
        assert!(Episode::serial([0, 0]).occurs_in(&w2));
    }

    #[test]
    fn subepisode_same_shape() {
        assert!(Episode::parallel([0]).is_subepisode_of(&Episode::parallel([0, 1])));
        assert!(!Episode::parallel([2]).is_subepisode_of(&Episode::parallel([0, 1])));
        assert!(Episode::serial([0, 1]).is_subepisode_of(&Episode::serial([0, 2, 1])));
        assert!(!Episode::serial([1, 0]).is_subepisode_of(&Episode::serial([0, 2, 1])));
    }

    #[test]
    fn subepisode_cross_shape() {
        assert!(Episode::parallel([0, 1]).is_subepisode_of(&Episode::serial([1, 2, 0])));
        assert!(Episode::serial([0]).is_subepisode_of(&Episode::parallel([0, 1])));
        assert!(!Episode::serial([0, 1]).is_subepisode_of(&Episode::parallel([0, 1])));
    }

    #[test]
    fn monotonicity_of_occurrence() {
        // If β occurs and α ⪯ β then α occurs — the framework's key
        // property, spot-checked on a window.
        let w = window(&[(1, 0), (2, 2), (3, 1), (5, 0)]);
        let beta = Episode::serial([0, 2, 1, 0]);
        assert!(beta.occurs_in(&w));
        for alpha in beta.immediate_subepisodes() {
            assert!(alpha.is_subepisode_of(&beta));
            assert!(alpha.occurs_in(&w), "{alpha} should occur");
        }
    }

    #[test]
    fn immediate_subepisodes_dedup() {
        // A→A→B: dropping either A gives the same A→B.
        let e = Episode::serial([0, 0, 1]);
        let subs = e.immediate_subepisodes();
        assert_eq!(subs.len(), 2); // A→B (once) and A→A
        assert!(subs.contains(&Episode::serial([0, 1])));
        assert!(subs.contains(&Episode::serial([0, 0])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Episode::parallel([0, 2]).display(), "{A,C}");
        assert_eq!(Episode::serial([0, 1, 0]).display(), "A→B→A");
    }
}
