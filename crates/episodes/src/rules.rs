//! Episode rules: "if `α` occurs in a window, so does `β`" — the
//! rule-generation stage of \[21\], mirroring association rules for
//! itemsets (Section 2 of the PODS paper).
//!
//! For a frequent episode `β` and a subepisode `α ⪯ β`, the rule `α ⇒ β`
//! has confidence `fr(β) / fr(α)`: among windows where the premise
//! occurs, how often does the whole episode? As with itemsets, all
//! frequencies are already in the mined collection — rule generation
//! needs no further passes over the sequence.

use std::collections::HashMap;

use crate::mine::EpisodeMining;
use crate::Episode;

/// An episode rule `premise ⇒ conclusion` with statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeRule {
    /// The premise `α` (an immediate subepisode of the conclusion).
    pub premise: Episode,
    /// The conclusion `β`.
    pub conclusion: Episode,
    /// `fr(β)`: window frequency of the conclusion.
    pub frequency: f64,
    /// `fr(β) / fr(α)` ∈ (0, 1].
    pub confidence: f64,
}

/// Derives all episode rules `α ⇒ β` with `β` frequent, `α` an immediate
/// subepisode of `β`, and confidence ≥ `min_confidence`. Sorted by
/// descending confidence then frequency.
pub fn episode_rules(mining: &EpisodeMining, min_confidence: f64) -> Vec<EpisodeRule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence threshold must be in [0, 1]"
    );
    let freq: HashMap<&Episode, f64> = mining.frequent.iter().map(|(e, f)| (e, *f)).collect();
    let mut rules = Vec::new();
    for (beta, f_beta) in &mining.frequent {
        if beta.rank() < 2 {
            continue; // premises must be nonempty and proper
        }
        for alpha in beta.immediate_subepisodes() {
            if alpha.rank() == 0 {
                continue;
            }
            // The theory is closed downward, so α is present.
            let f_alpha = freq[&alpha];
            let confidence = f_beta / f_alpha;
            if confidence >= min_confidence {
                rules.push(EpisodeRule {
                    premise: alpha,
                    conclusion: beta.clone(),
                    frequency: *f_beta,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.frequency.total_cmp(&a.frequency))
            .then(a.conclusion.cmp(&b.conclusion))
            .then(a.premise.cmp(&b.premise))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::planted_serial;
    use crate::mine::{frequency, mine_episodes, EpisodeClass};
    use crate::EventSequence;
    use rand::{rngs::StdRng, SeedableRng};

    fn planted() -> EventSequence {
        let mut rng = StdRng::seed_from_u64(1);
        planted_serial(5, 600, &[0, 1, 2], 8, &mut rng)
    }

    #[test]
    fn rules_have_recomputable_statistics() {
        let seq = planted();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 5, 0.25);
        let rules = episode_rules(&run, 0.0);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.premise.is_subepisode_of(&r.conclusion));
            assert_eq!(r.premise.rank() + 1, r.conclusion.rank());
            let fa = frequency(&seq, &r.premise, 5);
            let fb = frequency(&seq, &r.conclusion, 5);
            assert!((r.confidence - fb / fa).abs() < 1e-9);
            assert!(r.confidence > 0.0 && r.confidence <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn planted_signature_yields_confident_rule() {
        let seq = planted();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 5, 0.25);
        let rules = episode_rules(&run, 0.5);
        // A→B ⇒ A→B→C should be confident: B after A almost always leads
        // to C in the planted signature.
        assert!(
            rules.iter().any(|r| r.premise == Episode::serial([0, 1])
                && r.conclusion == Episode::serial([0, 1, 2])),
            "missing the planted rule; got {rules:?}"
        );
    }

    #[test]
    fn threshold_filters() {
        let seq = planted();
        let run = mine_episodes(&seq, EpisodeClass::Serial, 5, 0.25);
        let all = episode_rules(&run, 0.0);
        let strict = episode_rules(&run, 0.9);
        assert!(strict.len() <= all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.9));
    }

    #[test]
    fn sorted_by_confidence() {
        let seq = planted();
        let run = mine_episodes(&seq, EpisodeClass::Parallel, 5, 0.25);
        let rules = episode_rules(&run, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }
}
