//! Event-sequence generators for episode-mining tests and experiments.

use rand::Rng;

use crate::{Episode, EventSequence};

/// A uniformly random sequence: `len` events at consecutive times, types
/// uniform over the alphabet.
pub fn random_sequence<R: Rng + ?Sized>(m: usize, len: usize, rng: &mut R) -> EventSequence {
    EventSequence::from_pairs(m, (0..len as u64).map(|t| (t, rng.gen_range(0..m))))
}

/// A sequence with a planted serial episode: background noise with the
/// planted pattern injected every `period` ticks (events one tick apart),
/// so the pattern is frequent at window widths ≥ its length while random
/// orderings of the same types are not.
pub fn planted_serial<R: Rng + ?Sized>(
    m: usize,
    len: usize,
    pattern: &[usize],
    period: u64,
    rng: &mut R,
) -> EventSequence {
    assert!(period as usize > pattern.len(), "period too small");
    assert!(pattern.iter().all(|&k| k < m), "pattern outside alphabet");
    let mut pairs: Vec<(u64, usize)> = Vec::with_capacity(len + 2 * (len as u64 / period) as usize);
    for t in 0..len as u64 {
        if t % period < pattern.len() as u64 {
            pairs.push((t, pattern[(t % period) as usize]));
        } else {
            pairs.push((t, rng.gen_range(0..m)));
        }
    }
    EventSequence::from_pairs(m, pairs)
}

/// Returns the planted episode for convenience.
pub fn pattern_episode(pattern: &[usize]) -> Episode {
    Episode::serial(pattern.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::{frequency, mine_episodes, EpisodeClass};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn random_sequence_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_sequence(4, 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert_eq!(s.alphabet(), 4);
    }

    #[test]
    fn planted_pattern_is_frequent() {
        let mut rng = StdRng::seed_from_u64(2);
        let pattern = [0usize, 1, 2];
        let seq = planted_serial(5, 400, &pattern, 8, &mut rng);
        let ep = pattern_episode(&pattern);
        let f = frequency(&seq, &ep, 6);
        assert!(f > 0.3, "planted pattern too rare: {f}");
        // And the miner finds it.
        let run = mine_episodes(&seq, EpisodeClass::Serial, 6, 0.3);
        assert!(run.frequent.iter().any(|(e, _)| *e == ep));
    }

    #[test]
    fn reversed_pattern_is_rarer() {
        let mut rng = StdRng::seed_from_u64(3);
        let pattern = [0usize, 1, 2];
        let seq = planted_serial(6, 600, &pattern, 8, &mut rng);
        let fwd = frequency(&seq, &Episode::serial([0, 1, 2]), 6);
        let rev = frequency(&seq, &Episode::serial([2, 1, 0]), 6);
        assert!(fwd > 2.0 * rev, "fwd {fwd} vs rev {rev}");
    }
}
