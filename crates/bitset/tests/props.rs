//! Property-based tests for the `AttrSet` algebra: the Boolean-lattice laws
//! every downstream algorithm silently relies on.

use dualminer_bitset::{
    AttrSet, ImmediateSubsets, ImmediateSupersets, SetTrie, SubsetsOfSize, Universe,
};
use proptest::prelude::*;

const UNIVERSE: usize = 130; // spans three u64 blocks

fn arb_set() -> impl Strategy<Value = AttrSet> {
    proptest::collection::vec(0..UNIVERSE, 0..40).prop_map(|v| AttrSet::from_indices(UNIVERSE, v))
}

proptest! {
    #[test]
    fn union_commutes(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn intersection_commutes(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_associates(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn distributivity(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn de_morgan(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
    }

    #[test]
    fn double_complement(a in arb_set()) {
        prop_assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn difference_is_intersect_complement(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.difference(&b), a.intersection(&b.complement()));
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset(&b), a.union(&b) == b);
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
        prop_assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
    }

    #[test]
    fn len_inclusion_exclusion(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn iter_ascending_and_consistent(a in arb_set()) {
        let v = a.to_vec();
        prop_assert_eq!(v.len(), a.len());
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(AttrSet::from_indices(UNIVERSE, v), a);
    }

    #[test]
    fn immediate_neighbours(a in arb_set()) {
        for sub in ImmediateSubsets::new(&a) {
            prop_assert!(sub.is_proper_subset(&a));
            prop_assert_eq!(sub.len() + 1, a.len());
        }
        for sup in ImmediateSupersets::new(&a) {
            prop_assert!(sup.is_proper_superset(&a));
            prop_assert_eq!(sup.len(), a.len() + 1);
        }
        prop_assert_eq!(ImmediateSubsets::new(&a).count(), a.len());
        prop_assert_eq!(
            ImmediateSupersets::new(&a).count(),
            UNIVERSE - a.len()
        );
    }

    #[test]
    fn display_parse_round_trip(a in arb_set()) {
        let u = Universe::letters(UNIVERSE);
        let text = u.display(&a);
        if a.is_empty() {
            prop_assert_eq!(text, "∅");
        } else {
            // Multi-char names past index 25 force the comma-separated form.
            prop_assert_eq!(u.parse(&text).unwrap(), a);
        }
    }

    #[test]
    fn subsets_of_size_sound(k in 0usize..4) {
        // On a small universe, enumerate and cross-check with a filter.
        let n = 7;
        let listed: Vec<AttrSet> = SubsetsOfSize::new(n, k).collect();
        prop_assert!(listed.iter().all(|s| s.len() == k));
        let mut uniq = listed.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), listed.len());
    }

    #[test]
    fn ord_total_and_eq_consistent(a in arb_set(), b in arb_set()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }
}

/// Universe sizes straddling the inline/heap boundary ([`INLINE_BITS`] =
/// 128): both inline variants, the exact boundary, and spilled sizes.
const SIZES: [usize; 5] = [64, 127, 128, 129, 200];

/// Three index pools plus a universe size chosen from [`SIZES`]; indices
/// are folded into the universe by `% n`.
fn arb_sized_triple() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>, Vec<usize>)> {
    let pool = || proptest::collection::vec(0usize..200, 0..40);
    (0usize..SIZES.len(), pool(), pool(), pool()).prop_map(|(i, a, b, c)| (SIZES[i], a, b, c))
}

fn fold(n: usize, raw: &[usize]) -> AttrSet {
    AttrSet::from_indices(n, raw.iter().map(|i| i % n))
}

proptest! {
    /// The non-materializing counting kernels answer exactly what the
    /// materialized set algebra answers, on both sides of the inline/heap
    /// boundary.
    #[test]
    fn counting_kernels_equal_materialized((n, ra, rb, rc) in arb_sized_triple()) {
        let a = fold(n, &ra);
        let b = fold(n, &rb);
        let c = fold(n, &rc);
        prop_assert_eq!(a.is_inline(), n <= dualminer_bitset::INLINE_BITS);

        prop_assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
        prop_assert_eq!(
            a.intersection_len_with(&b, &c),
            a.intersection(&b).intersection(&c).len()
        );
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
        prop_assert_eq!(a.is_disjoint(&b), !a.intersects(&b));

        let mut fused = a.clone();
        let len = fused.intersect_with_returning_len(&b);
        let reference = a.intersection(&b);
        prop_assert_eq!(len, reference.len());
        prop_assert_eq!(fused, reference);
    }

    /// The same logical sets built over an inline universe (≤ 128 bits) and
    /// a spilled one behave identically: same members, same algebra, same
    /// orderings, equal cross-universe cmp_lex.
    #[test]
    fn inline_and_spilled_agree((n, ra, rb, _) in arb_sized_triple()) {
        const SPILLED: usize = 500;
        let small_a = fold(n, &ra);
        let small_b = fold(n, &rb);
        let big_a = AttrSet::from_indices(SPILLED, small_a.iter());
        let big_b = AttrSet::from_indices(SPILLED, small_b.iter());
        prop_assert!(!big_a.is_inline());

        prop_assert_eq!(
            small_a.union(&small_b).to_vec(),
            big_a.union(&big_b).to_vec()
        );
        prop_assert_eq!(
            small_a.intersection(&small_b).to_vec(),
            big_a.intersection(&big_b).to_vec()
        );
        prop_assert_eq!(
            small_a.difference(&small_b).to_vec(),
            big_a.difference(&big_b).to_vec()
        );
        prop_assert_eq!(
            small_a.symmetric_difference(&small_b).to_vec(),
            big_a.symmetric_difference(&big_b).to_vec()
        );
        prop_assert_eq!(small_a.is_subset(&small_b), big_a.is_subset(&big_b));
        prop_assert_eq!(small_a.intersects(&small_b), big_a.intersects(&big_b));
        prop_assert_eq!(
            small_a.intersection_len(&small_b),
            big_a.intersection_len(&big_b)
        );
        prop_assert_eq!(small_a.len(), big_a.len());
        prop_assert_eq!(small_a.first(), big_a.first());

        // Orderings agree between representations; cmp_lex also works
        // *across* them (it never required equal universes).
        prop_assert_eq!(
            small_a.cmp_lex(&small_b),
            big_a.cmp_lex(&big_b)
        );
        prop_assert_eq!(
            small_a.cmp_card_lex(&small_b),
            big_a.cmp_card_lex(&big_b)
        );
        prop_assert_eq!(small_a.cmp_lex(&big_a), std::cmp::Ordering::Equal);
        prop_assert_eq!(small_a.cmp_lex(&big_b), big_a.cmp_lex(&small_b));
    }
}

/// A universe size from [`SIZES`], a family of index pools, and three
/// query pools — the raw material for the set-trie reference checks.
fn arb_sized_family() -> impl Strategy<Value = (usize, Vec<Vec<usize>>, Vec<Vec<usize>>)> {
    let pool = || proptest::collection::vec(0usize..200, 0..12);
    (
        0usize..SIZES.len(),
        proptest::collection::vec(pool(), 0..20),
        proptest::collection::vec(pool(), 3),
    )
        .prop_map(|(i, fam, qs)| (SIZES[i], fam, qs))
}

proptest! {
    /// Every [`SetTrie`] query answers exactly what the naive pairwise
    /// scan over the family answers, on both sides of the inline/heap
    /// `AttrSet` boundary. Family members double as queries so the
    /// equal-set edge cases (`contains` vs `has_subset_of` vs
    /// `has_proper_superset_of`) are always exercised.
    #[test]
    fn set_trie_matches_naive_reference((n, fam, qs) in arb_sized_family()) {
        let family: Vec<AttrSet> = fam.iter().map(|p| fold(n, p)).collect();
        let mut trie = SetTrie::new();
        for s in &family {
            trie.insert(s);
        }
        let mut distinct = family.clone();
        distinct.sort_by(|a, b| a.cmp_lex(b));
        distinct.dedup();
        prop_assert_eq!(trie.len(), distinct.len());

        let queries: Vec<AttrSet> =
            qs.iter().map(|p| fold(n, p)).chain(family.iter().cloned()).collect();
        for q in &queries {
            prop_assert_eq!(trie.contains(q), family.contains(q));
            prop_assert_eq!(
                trie.has_subset_of(q),
                family.iter().any(|s| s.is_subset(q)),
                "has_subset_of {:?}", q
            );
            prop_assert_eq!(
                trie.has_superset_of(q),
                family.iter().any(|s| q.is_subset(s)),
                "has_superset_of {:?}", q
            );
            prop_assert_eq!(
                trie.has_proper_superset_of(q),
                family.iter().any(|s| q.is_proper_subset(s)),
                "has_proper_superset_of {:?}", q
            );
            let listed: Vec<AttrSet> = trie.subsets_of(q).collect();
            let expected: Vec<AttrSet> = distinct
                .iter()
                .filter(|s| s.is_subset(q))
                .cloned()
                .collect();
            prop_assert_eq!(listed, expected, "subsets_of {:?}", q);
        }
    }
}
