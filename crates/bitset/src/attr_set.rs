//! The [`AttrSet`] type: a subset of a fixed attribute universe.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::ops;
use crate::{blocks_for, BLOCK_BITS, INLINE_BITS, INLINE_BLOCKS};

/// Storage for an [`AttrSet`]'s bit blocks.
///
/// Universes of at most [`INLINE_BITS`] bits keep their blocks inline —
/// constructing, cloning, and combining such sets never touches the heap.
/// Larger universes spill to a heap vector. The variant is a function of
/// the universe size alone, so two sets over the same universe always have
/// the same representation and binary operations never need a mixed path.
///
/// Invariant: every bit at position `>= nbits` is zero, *including* whole
/// inline blocks beyond `blocks_for(nbits)`. This lets the inline fast
/// paths operate on both words unconditionally.
#[derive(Clone, PartialEq, Eq)]
enum Repr {
    Inline([u64; INLINE_BLOCKS]),
    Spilled(Vec<u64>),
}

/// A set of attributes drawn from a fixed universe `{0, …, n−1}`.
///
/// The universe size `n` is part of the value: two `AttrSet`s are only
/// comparable (and combinable) when they share the same universe size, and
/// [`complement`](AttrSet::complement) is complement *within the universe*.
/// This mirrors the paper's setting, where every sentence of the language is
/// a subset of the same attribute set `R`.
///
/// Storage is a packed sequence of `u64` blocks with a hybrid layout:
/// universes of at most 128 bits are stored **inline** (no heap
/// allocation — covering every paper-scale workload), larger universes
/// spill to a heap vector. Every set operation runs in `O(n / 64)` word
/// operations either way; see DESIGN.md §9 for the layout rules.
#[derive(Clone, Eq)]
pub struct AttrSet {
    nbits: usize,
    repr: Repr,
}

/// Generates the four in-place binary block operations: the both-inline arm
/// is fully unrolled over the two words (the tail-zero invariant makes the
/// second word a no-op for sub-64-bit universes), the spilled arm delegates
/// to the slice kernel in [`crate::ops`].
macro_rules! inplace_binop {
    ($(#[$doc:meta])* $name:ident, $kernel:ident, $op:tt, $rhs:tt) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&mut self, other: &AttrSet) {
            self.check_same_universe(other);
            match (&mut self.repr, &other.repr) {
                (Repr::Inline(a), Repr::Inline(b)) => {
                    a[0] $op inplace_binop!(@rhs $rhs b[0]);
                    a[1] $op inplace_binop!(@rhs $rhs b[1]);
                }
                (Repr::Spilled(a), Repr::Spilled(b)) => ops::$kernel(a, b),
                _ => unreachable!("same universe implies same representation"),
            }
        }
    };
    (@rhs id $e:expr) => { $e };
    (@rhs not $e:expr) => { !$e };
}

impl AttrSet {
    /// The empty set over a universe of `nbits` attributes.
    ///
    /// Allocation-free for `nbits ≤ 128` (the inline representation).
    #[inline]
    pub fn empty(nbits: usize) -> Self {
        let repr = if nbits <= INLINE_BITS {
            Repr::Inline([0; INLINE_BLOCKS])
        } else {
            Repr::Spilled(vec![0; blocks_for(nbits)])
        };
        AttrSet { nbits, repr }
    }

    /// The full set `{0, …, nbits−1}`.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::empty(nbits);
        for b in s.blocks_mut() {
            *b = u64::MAX;
        }
        s.trim_tail();
        s
    }

    /// The singleton `{attr}` over a universe of `nbits` attributes.
    ///
    /// # Panics
    /// Panics if `attr >= nbits`.
    pub fn singleton(nbits: usize, attr: usize) -> Self {
        let mut s = Self::empty(nbits);
        s.insert(attr);
        s
    }

    /// Builds a set from attribute indices.
    ///
    /// # Panics
    /// Panics if any index is `>= nbits`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(nbits: usize, indices: I) -> Self {
        let mut s = Self::empty(nbits);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.nbits
    }

    /// Whether this set uses the inline (allocation-free) representation —
    /// true exactly when the universe is at most 128 bits.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// The logical storage blocks, `blocks_for(nbits)` of them.
    #[inline]
    fn blocks_ref(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(a) => &a[..blocks_for(self.nbits)],
            Repr::Spilled(v) => v,
        }
    }

    /// Mutable logical storage blocks.
    #[inline]
    fn blocks_mut(&mut self) -> &mut [u64] {
        let nb = blocks_for(self.nbits);
        match &mut self.repr {
            Repr::Inline(a) => &mut a[..nb],
            Repr::Spilled(v) => v,
        }
    }

    /// Clears bits beyond `nbits` (internal invariant: trailing bits of the
    /// last logical block and any unused inline block are always zero).
    #[inline]
    fn trim_tail(&mut self) {
        let used = self.nbits % BLOCK_BITS;
        if used != 0 {
            if let Some(last) = self.blocks_mut().last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if let Repr::Inline(a) = &mut self.repr {
            for b in &mut a[blocks_for(self.nbits)..] {
                *b = 0;
            }
        }
    }

    #[inline]
    fn check_attr(&self, attr: usize) {
        assert!(
            attr < self.nbits,
            "attribute {attr} out of universe 0..{}",
            self.nbits
        );
    }

    #[inline]
    fn check_same_universe(&self, other: &AttrSet) {
        assert!(
            self.nbits == other.nbits,
            "universe mismatch: {} vs {}",
            self.nbits,
            other.nbits
        );
    }

    /// Inserts `attr`. Returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `attr` is outside the universe.
    #[inline]
    pub fn insert(&mut self, attr: usize) -> bool {
        self.check_attr(attr);
        let (b, m) = (attr / BLOCK_BITS, 1u64 << (attr % BLOCK_BITS));
        let word = &mut self.blocks_mut()[b];
        let fresh = *word & m == 0;
        *word |= m;
        fresh
    }

    /// Removes `attr`. Returns `true` if it was present.
    ///
    /// # Panics
    /// Panics if `attr` is outside the universe.
    #[inline]
    pub fn remove(&mut self, attr: usize) -> bool {
        self.check_attr(attr);
        let (b, m) = (attr / BLOCK_BITS, 1u64 << (attr % BLOCK_BITS));
        let word = &mut self.blocks_mut()[b];
        let present = *word & m != 0;
        *word &= !m;
        present
    }

    /// Whether `attr` is in the set. Attributes outside the universe are
    /// never members.
    #[inline]
    pub fn contains(&self, attr: usize) -> bool {
        attr < self.nbits
            && self.blocks_ref()[attr / BLOCK_BITS] & (1u64 << (attr % BLOCK_BITS)) != 0
    }

    /// Cardinality (number of attributes in the set).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(a) => (a[0].count_ones() + a[1].count_ones()) as usize,
            Repr::Spilled(v) => v.iter().map(|b| b.count_ones() as usize).sum(),
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(a) => a[0] | a[1] == 0,
            Repr::Spilled(v) => v.iter().all(|&b| b == 0),
        }
    }

    /// Whether the set equals the whole universe.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.nbits
    }

    /// The smallest attribute in the set, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &b) in self.blocks_ref().iter().enumerate() {
            if b != 0 {
                return Some(i * BLOCK_BITS + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The largest attribute in the set, if any.
    pub fn last(&self) -> Option<usize> {
        for (i, &b) in self.blocks_ref().iter().enumerate().rev() {
            if b != 0 {
                return Some(i * BLOCK_BITS + (BLOCK_BITS - 1 - b.leading_zeros() as usize));
            }
        }
        None
    }

    /// Removes all attributes.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(a) => *a = [0; INLINE_BLOCKS],
            Repr::Spilled(v) => v.iter_mut().for_each(|b| *b = 0),
        }
    }

    // --- set algebra -----------------------------------------------------

    inplace_binop! {
        /// In-place union: `self ∪= other`.
        ///
        /// # Panics
        /// Panics on universe mismatch (also true of every binary operation
        /// below).
        union_with, union_blocks, |=, id
    }

    inplace_binop! {
        /// In-place intersection: `self ∩= other`.
        intersect_with, intersect_blocks, &=, id
    }

    inplace_binop! {
        /// In-place difference: `self \= other`.
        difference_with, difference_blocks, &=, not
    }

    inplace_binop! {
        /// In-place symmetric difference: `self Δ= other`.
        symmetric_difference_with, symmetric_difference_blocks, ^=, id
    }

    /// In-place complement within the universe.
    #[inline]
    pub fn complement_in_place(&mut self) {
        for b in self.blocks_mut() {
            *b = !*b;
        }
        self.trim_tail();
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Writes `self ∩ other` into `out`, reusing its allocation.
    ///
    /// The borrow-based counterpart of [`intersection`](AttrSet::intersection)
    /// for hot loops that keep a scratch set per worker instead of
    /// allocating a fresh set per operation.
    ///
    /// # Panics
    /// Panics if the three sets do not share one universe.
    #[inline]
    pub fn intersection_into(&self, other: &AttrSet, out: &mut AttrSet) {
        self.check_same_universe(other);
        self.check_same_universe(out);
        for ((o, a), b) in out
            .blocks_mut()
            .iter_mut()
            .zip(self.blocks_ref())
            .zip(other.blocks_ref())
        {
            *o = a & b;
        }
    }

    /// Writes `self ∪ other` into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if the three sets do not share one universe.
    #[inline]
    pub fn union_into(&self, other: &AttrSet, out: &mut AttrSet) {
        self.check_same_universe(other);
        self.check_same_universe(out);
        for ((o, a), b) in out
            .blocks_mut()
            .iter_mut()
            .zip(self.blocks_ref())
            .zip(other.blocks_ref())
        {
            *o = a | b;
        }
    }

    /// Writes `self \ other` into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if the three sets do not share one universe.
    #[inline]
    pub fn difference_into(&self, other: &AttrSet, out: &mut AttrSet) {
        self.check_same_universe(other);
        self.check_same_universe(out);
        for ((o, a), b) in out
            .blocks_mut()
            .iter_mut()
            .zip(self.blocks_ref())
            .zip(other.blocks_ref())
        {
            *o = a & !b;
        }
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// `self Δ other` as a new set.
    pub fn symmetric_difference(&self, other: &AttrSet) -> AttrSet {
        let mut s = self.clone();
        s.symmetric_difference_with(other);
        s
    }

    /// `R \ self` (complement within the universe) as a new set.
    pub fn complement(&self) -> AttrSet {
        let mut s = self.clone();
        s.complement_in_place();
        s
    }

    // --- relational tests ------------------------------------------------

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.check_same_universe(other);
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => (a[0] & !b[0]) | (a[1] & !b[1]) == 0,
            (Repr::Spilled(a), Repr::Spilled(b)) => ops::is_subset_blocks(a, b),
            _ => unreachable!("same universe implies same representation"),
        }
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        other.is_subset(self)
    }

    /// Whether `self ⊂ other` (proper subset).
    #[inline]
    pub fn is_proper_subset(&self, other: &AttrSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Whether `self ⊃ other` (proper superset).
    #[inline]
    pub fn is_proper_superset(&self, other: &AttrSet) -> bool {
        other.is_proper_subset(self)
    }

    /// Whether the sets share at least one attribute.
    ///
    /// This is the *hitting* test of the transversal problem: `T` is a
    /// transversal of a hypergraph iff `T.intersects(E)` for every edge `E`.
    #[inline]
    pub fn intersects(&self, other: &AttrSet) -> bool {
        self.check_same_universe(other);
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => (a[0] & b[0]) | (a[1] & b[1]) != 0,
            (Repr::Spilled(a), Repr::Spilled(b)) => !ops::is_disjoint_blocks(a, b),
            _ => unreachable!("same universe implies same representation"),
        }
    }

    /// Whether the sets are disjoint.
    #[inline]
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        !self.intersects(other)
    }

    // --- non-materializing kernels ----------------------------------------
    //
    // Counting variants of the set algebra: they answer "how big would the
    // result be?" without building it, so the hot counting loops (support
    // queries, MMCS branching, FK frequency tests) do zero heap traffic.
    // The slice-level implementations live in `ops`.

    /// Cardinality of `self ∩ other` without materializing the
    /// intersection.
    #[inline]
    pub fn intersection_len(&self, other: &AttrSet) -> usize {
        self.check_same_universe(other);
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                ((a[0] & b[0]).count_ones() + (a[1] & b[1]).count_ones()) as usize
            }
            (Repr::Spilled(a), Repr::Spilled(b)) => ops::intersection_len_blocks(a, b),
            _ => unreachable!("same universe implies same representation"),
        }
    }

    /// Cardinality of the three-way intersection `self ∩ b ∩ c` without
    /// materializing any intermediate set.
    ///
    /// # Panics
    /// Panics if the three sets do not share one universe.
    #[inline]
    pub fn intersection_len_with(&self, b: &AttrSet, c: &AttrSet) -> usize {
        self.check_same_universe(b);
        self.check_same_universe(c);
        match (&self.repr, &b.repr, &c.repr) {
            (Repr::Inline(x), Repr::Inline(y), Repr::Inline(z)) => {
                ((x[0] & y[0] & z[0]).count_ones() + (x[1] & y[1] & z[1]).count_ones()) as usize
            }
            (Repr::Spilled(x), Repr::Spilled(y), Repr::Spilled(z)) => {
                ops::intersection_len3_blocks(x, y, z)
            }
            _ => unreachable!("same universe implies same representation"),
        }
    }

    /// Fused in-place intersection that also returns the cardinality of the
    /// result: `self ∩= other; self.len()` in a single pass.
    #[inline]
    pub fn intersect_with_returning_len(&mut self, other: &AttrSet) -> usize {
        self.check_same_universe(other);
        match (&mut self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                a[0] &= b[0];
                a[1] &= b[1];
                (a[0].count_ones() + a[1].count_ones()) as usize
            }
            (Repr::Spilled(a), Repr::Spilled(b)) => ops::intersect_returning_len_blocks(a, b),
            _ => unreachable!("same universe implies same representation"),
        }
    }

    // --- iteration & conversion ------------------------------------------

    /// Iterates over member attributes in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        let blocks = self.blocks_ref();
        Iter {
            blocks,
            block: 0,
            bits: blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the member attributes into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Raw storage blocks (low attribute indices in low blocks/bits).
    pub fn blocks(&self) -> &[u64] {
        self.blocks_ref()
    }

    /// Compares two sets by cardinality first, then lexicographically by
    /// ascending attribute indices. This is the natural order for printing
    /// lattice levels and borders.
    pub fn cmp_card_lex(&self, other: &AttrSet) -> Ordering {
        self.len()
            .cmp(&other.len())
            .then_with(|| self.cmp_lex(other))
    }

    /// Compares two sets lexicographically by ascending attribute indices
    /// (`{A,B} < {A,C} < {B}`), i.e. dictionary order of the paper's
    /// shorthand strings.
    ///
    /// Runs block-wise: at the lowest differing bit `i`, the set containing
    /// `i` is lexicographically smaller unless the other set has no member
    /// above `i` at all (then it is a proper prefix, hence smaller).
    pub fn cmp_lex(&self, other: &AttrSet) -> Ordering {
        ops::cmp_lex_blocks(self.blocks_ref(), other.blocks_ref())
    }
}

/// Ascending-index iterator over an [`AttrSet`]'s members.
pub struct Iter<'a> {
    blocks: &'a [u64],
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1; // clear lowest set bit
                return Some(self.block * BLOCK_BITS + tz);
            }
            self.block += 1;
            if self.block >= self.blocks.len() {
                return None;
            }
            self.bits = self.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl PartialEq for AttrSet {
    fn eq(&self, other: &Self) -> bool {
        if self.nbits != other.nbits {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a == b,
            (Repr::Spilled(a), Repr::Spilled(b)) => a == b,
            _ => unreachable!("same universe implies same representation"),
        }
    }
}

impl Hash for AttrSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.nbits.hash(state);
        self.blocks_ref().hash(state);
    }
}

/// Total order on same-universe sets: block-wise numeric comparison
/// (high block first), which groups supersets of high attributes together.
/// It is an arbitrary-but-deterministic total order suitable for
/// `BTreeSet`/`BTreeMap` keys; use [`AttrSet::cmp_card_lex`] or
/// [`AttrSet::cmp_lex`] when a human-meaningful order is needed.
///
/// Sets from different universes compare by universe size first, so `Ord`
/// stays consistent with `Eq` even across universes.
impl Ord for AttrSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.nbits.cmp(&other.nbits).then_with(|| {
            match (&self.repr, &other.repr) {
                // Tail blocks are zero in both, so comparing the full
                // inline array high-word-first equals comparing the
                // logical blocks.
                (Repr::Inline(a), Repr::Inline(b)) => a[1].cmp(&b[1]).then_with(|| a[0].cmp(&b[0])),
                (Repr::Spilled(a), Repr::Spilled(b)) => a.iter().rev().cmp(b.iter().rev()),
                _ => unreachable!("same universe implies same representation"),
            }
        })
    }
}

impl PartialOrd for AttrSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = AttrSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = AttrSet::full(10);
        assert!(f.is_full());
        assert_eq!(f.len(), 10);
        assert_eq!(e.complement(), f);
        assert_eq!(f.complement(), e);
    }

    #[test]
    fn full_trims_tail_bits() {
        // 70 bits spans two blocks; the second block must only have 6 bits.
        let f = AttrSet::full(70);
        assert_eq!(f.len(), 70);
        assert_eq!(f.last(), Some(69));
        assert!(!f.contains(70));
    }

    #[test]
    fn inline_heap_boundary() {
        for nbits in [1usize, 63, 64, 65, 127, 128] {
            let f = AttrSet::full(nbits);
            assert!(f.is_inline(), "nbits={nbits}");
            assert_eq!(f.len(), nbits);
            assert_eq!(f.blocks().len(), crate::blocks_for(nbits));
        }
        for nbits in [129usize, 200, 1000] {
            let f = AttrSet::full(nbits);
            assert!(!f.is_inline(), "nbits={nbits}");
            assert_eq!(f.len(), nbits);
            assert_eq!(f.blocks().len(), crate::blocks_for(nbits));
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::empty(100);
        assert!(s.insert(3));
        assert!(s.insert(99));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.contains(99));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.to_vec(), vec![99]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        AttrSet::empty(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_union_panics() {
        let mut a = AttrSet::empty(5);
        a.union_with(&AttrSet::empty(6));
    }

    #[test]
    fn algebra_small() {
        let a = AttrSet::from_indices(8, [0, 1, 2]);
        let b = AttrSet::from_indices(8, [1, 3]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).to_vec(), vec![1]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 2]);
        assert_eq!(a.symmetric_difference(&b).to_vec(), vec![0, 2, 3]);
        assert_eq!(a.complement().to_vec(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn subset_superset() {
        let a = AttrSet::from_indices(8, [0, 1, 2]);
        let b = AttrSet::from_indices(8, [1, 2]);
        assert!(b.is_subset(&a));
        assert!(b.is_proper_subset(&a));
        assert!(a.is_superset(&b));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn intersects_and_disjoint() {
        let a = AttrSet::from_indices(128, [0, 127]);
        let b = AttrSet::from_indices(128, [127]);
        let c = AttrSet::from_indices(128, [64]);
        assert!(a.intersects(&b));
        assert!(a.is_disjoint(&c));
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(a.intersection_len(&c), 0);
    }

    #[test]
    fn counting_kernels_match_materialized() {
        for n in [60usize, 128, 200] {
            let a = AttrSet::from_indices(n, (0..n).step_by(2));
            let b = AttrSet::from_indices(n, (0..n).step_by(3));
            let c = AttrSet::from_indices(n, (0..n).step_by(5));
            assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
            assert_eq!(
                a.intersection_len_with(&b, &c),
                a.intersection(&b).intersection(&c).len()
            );
            let mut fused = a.clone();
            let len = fused.intersect_with_returning_len(&b);
            assert_eq!(fused, a.intersection(&b));
            assert_eq!(len, fused.len());
        }
    }

    #[test]
    fn first_last() {
        let s = AttrSet::from_indices(200, [5, 77, 191]);
        assert_eq!(s.first(), Some(5));
        assert_eq!(s.last(), Some(191));
        assert_eq!(AttrSet::empty(200).first(), None);
        assert_eq!(AttrSet::empty(200).last(), None);
    }

    #[test]
    fn iter_crosses_blocks() {
        let v = vec![0, 63, 64, 65, 129];
        let s = AttrSet::from_indices(130, v.clone());
        assert_eq!(s.to_vec(), v);
    }

    #[test]
    fn lex_orders() {
        let u = 4;
        let ab = AttrSet::from_indices(u, [0, 1]);
        let ac = AttrSet::from_indices(u, [0, 2]);
        let b = AttrSet::from_indices(u, [1]);
        assert_eq!(ab.cmp_lex(&ac), Ordering::Less);
        assert_eq!(ac.cmp_lex(&b), Ordering::Less);
        assert_eq!(b.cmp_card_lex(&ab), Ordering::Less); // smaller first
        assert_eq!(ab.cmp_lex(&ab), Ordering::Equal);
    }

    #[test]
    fn cmp_lex_prefix_is_smaller() {
        // {0} < {0,1}: a proper lexicographic prefix sorts first.
        let a = AttrSet::from_indices(130, [0]);
        let b = AttrSet::from_indices(130, [0, 1]);
        assert_eq!(a.cmp_lex(&b), Ordering::Less);
        assert_eq!(b.cmp_lex(&a), Ordering::Greater);
        // Across blocks: {5} vs {5, 100}.
        let c = AttrSet::from_indices(130, [5]);
        let d = AttrSet::from_indices(130, [5, 100]);
        assert_eq!(c.cmp_lex(&d), Ordering::Less);
    }

    #[test]
    fn ord_consistent_with_eq() {
        let a = AttrSet::from_indices(8, [1, 2]);
        let b = AttrSet::from_indices(8, [1, 2]);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_format() {
        let s = AttrSet::from_indices(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1,5}");
    }

    #[test]
    fn clear_resets() {
        let mut s = AttrSet::full(65);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe_size(), 65);
    }

    #[test]
    fn borrowed_kernels_match_allocating_ops() {
        let a = AttrSet::from_indices(130, [0, 63, 64, 129]);
        let b = AttrSet::from_indices(130, [63, 64, 100]);
        let mut out = AttrSet::empty(130);
        a.intersection_into(&b, &mut out);
        assert_eq!(out, a.intersection(&b));
        a.union_into(&b, &mut out);
        assert_eq!(out, a.union(&b));
        a.difference_into(&b, &mut out);
        assert_eq!(out, a.difference(&b));
        // `out` may alias an operand's value after prior writes: the loop
        // reads operands only, so reusing the same scratch is sound.
        let mut scratch = a.clone();
        a.intersection_into(&b, &mut scratch);
        assert_eq!(scratch, a.intersection(&b));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn borrowed_kernel_checks_out_universe() {
        let a = AttrSet::empty(5);
        let mut out = AttrSet::empty(6);
        a.intersection_into(&a.clone(), &mut out);
    }

    #[test]
    fn attr_set_is_send_and_sync() {
        // Compile-time assertion that the parallel layer can share and move
        // AttrSets across scoped worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttrSet>();
        assert_send_sync::<Vec<AttrSet>>();
    }
}
