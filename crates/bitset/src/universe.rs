//! The [`Universe`] type: a named attribute universe.

use std::fmt;

use crate::AttrSet;

/// An attribute universe `R = {0, …, n−1}` with optional human-readable
/// attribute names.
///
/// The PODS'97 paper writes small sets in a shorthand — `ABC` for
/// `{A, B, C}` — and all of its worked examples (Figure 1, Examples 8, 11,
/// 17, 25) use single-letter attributes. [`Universe::letters`] builds such a
/// universe and [`Universe::parse`]/[`Universe::display`] round-trip the
/// shorthand, which keeps tests and example programs legible against the
/// paper text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
}

/// Error returned by [`Universe::parse`] when a token is not an attribute
/// name of the universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSetError {
    token: String,
}

impl fmt::Display for ParseSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown attribute {:?}", self.token)
    }
}

impl std::error::Error for ParseSetError {}

impl Universe {
    /// A universe of `n` attributes named by the caller.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Universe {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// A universe of `n` attributes named `A, B, C, …` (then `A1, B1, …`
    /// past 26, so names stay unique for any `n`).
    pub fn letters(n: usize) -> Self {
        let names = (0..n)
            .map(|i| {
                let letter = (b'A' + (i % 26) as u8) as char;
                if i < 26 {
                    letter.to_string()
                } else {
                    format!("{letter}{}", i / 26)
                }
            })
            .collect();
        Universe { names }
    }

    /// A universe of `n` attributes named `x1, …, xn` (the paper's Section 6
    /// variable convention).
    pub fn variables(n: usize) -> Self {
        Universe {
            names: (1..=n).map(|i| format!("x{i}")).collect(),
        }
    }

    /// Number of attributes in the universe.
    pub fn size(&self) -> usize {
        self.names.len()
    }

    /// The name of attribute `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The index of the attribute named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The empty set over this universe.
    pub fn empty_set(&self) -> AttrSet {
        AttrSet::empty(self.size())
    }

    /// The full set over this universe.
    pub fn full_set(&self) -> AttrSet {
        AttrSet::full(self.size())
    }

    /// Parses the paper's shorthand into a set.
    ///
    /// Single-character attribute names may be concatenated (`"ABD"`);
    /// multi-character names must be separated by spaces or commas
    /// (`"x1 x3"`, `"x1,x3"`). The empty string parses to the empty set.
    pub fn parse(&self, text: &str) -> Result<AttrSet, ParseSetError> {
        let mut set = self.empty_set();
        let single_char_names = self.names.iter().all(|n| n.chars().count() == 1);
        let tokens: Vec<String> = if text.contains([' ', ',']) || !single_char_names {
            text.split([' ', ','])
                .filter(|t| !t.is_empty())
                .map(str::to_owned)
                .collect()
        } else {
            text.chars().map(|c| c.to_string()).collect()
        };
        for tok in tokens {
            match self.index_of(&tok) {
                Some(i) => {
                    set.insert(i);
                }
                None => return Err(ParseSetError { token: tok }),
            }
        }
        Ok(set)
    }

    /// Renders a set in the paper's shorthand: concatenated names when all
    /// names are single characters, comma-separated otherwise. The empty
    /// set renders as `"∅"`.
    pub fn display(&self, set: &AttrSet) -> String {
        assert_eq!(
            set.universe_size(),
            self.size(),
            "set universe does not match this Universe"
        );
        if set.is_empty() {
            return "∅".to_string();
        }
        let single = self.names.iter().all(|n| n.chars().count() == 1);
        let sep = if single { "" } else { "," };
        set.iter()
            .map(|i| self.names[i].as_str())
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Renders a family of sets as `{ABC, BD}` sorted by cardinality then
    /// lexicographically — the order the paper lists borders in.
    pub fn display_family<'a, I: IntoIterator<Item = &'a AttrSet>>(&self, family: I) -> String {
        let mut sets: Vec<&AttrSet> = family.into_iter().collect();
        sets.sort_by(|a, b| a.cmp_card_lex(b));
        let inner = sets
            .iter()
            .map(|s| self.display(s))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{inner}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_names() {
        let u = Universe::letters(4);
        assert_eq!(u.size(), 4);
        assert_eq!(u.name(0), "A");
        assert_eq!(u.name(3), "D");
        assert_eq!(u.index_of("C"), Some(2));
        assert_eq!(u.index_of("Z"), None);
    }

    #[test]
    fn letters_past_26_are_unique() {
        let u = Universe::letters(30);
        assert_eq!(u.name(26), "A1");
        assert_eq!(u.index_of("A"), Some(0));
        assert_eq!(u.index_of("A1"), Some(26));
    }

    #[test]
    fn parse_shorthand() {
        let u = Universe::letters(4);
        let abc = u.parse("ABC").unwrap();
        assert_eq!(abc.to_vec(), vec![0, 1, 2]);
        assert_eq!(u.parse("").unwrap(), u.empty_set());
        assert!(u.parse("AX").is_err());
    }

    #[test]
    fn parse_multichar() {
        let u = Universe::variables(3);
        let s = u.parse("x1,x3").unwrap();
        assert_eq!(s.to_vec(), vec![0, 2]);
        let s2 = u.parse("x1 x3").unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn display_round_trip() {
        let u = Universe::letters(4);
        let bd = u.parse("BD").unwrap();
        assert_eq!(u.display(&bd), "BD");
        assert_eq!(u.display(&u.empty_set()), "∅");
    }

    #[test]
    fn display_family_sorted() {
        let u = Universe::letters(4);
        let fam = [
            u.parse("BD").unwrap(),
            u.parse("ABC").unwrap(),
            u.parse("D").unwrap(),
        ];
        assert_eq!(u.display_family(fam.iter()), "{D, BD, ABC}");
    }

    #[test]
    fn variables_names() {
        let u = Universe::variables(2);
        assert_eq!(u.name(0), "x1");
        assert_eq!(u.display(&u.full_set()), "x1,x2");
    }
}
