//! # dualminer-bitset
//!
//! Fixed-universe bitsets — the substrate every other `dualminer` crate is
//! built on.
//!
//! The framework of Gunopulos, Khardon, Mannila and Toivonen (PODS 1997)
//! works with languages *representable as sets* (Definition 6 of the paper):
//! every sentence is a subset of a finite attribute universe
//! `R = {0, 1, …, n−1}`. This crate provides:
//!
//! * [`AttrSet`] — a set of attributes, stored as packed `u64` blocks, with
//!   the full set algebra (union, intersection, difference, complement
//!   within the universe), subset/superset tests, and ascending-index
//!   iteration. All binary operations require both operands to share the
//!   same universe size and panic otherwise; this catches cross-lattice
//!   mixups early.
//! * [`Universe`] — the attribute universe with optional human-readable
//!   names, used for parsing and displaying sets in the paper's shorthand
//!   (`ABC` for `{A, B, C}`).
//! * Enumeration helpers — [`SubsetsOfSize`], immediate subsets/supersets —
//!   that the levelwise and Dualize-and-Advance algorithms use to walk the
//!   subset lattice one level at a time.
//! * [`SetTrie`] — a prefix tree over ascending-index set representations
//!   answering subset/superset existence queries in output-sensitive time:
//!   the index behind antichain minimization, prefix-join candidate
//!   generation, and border derivation.
//!
//! # Example
//!
//! ```
//! use dualminer_bitset::{AttrSet, Universe};
//!
//! let u = Universe::letters(4); // attributes A, B, C, D
//! let abc = u.parse("ABC").unwrap();
//! let bd = u.parse("BD").unwrap();
//!
//! assert_eq!(abc.intersection(&bd), u.parse("B").unwrap());
//! assert!(u.parse("AB").unwrap().is_subset(&abc));
//! assert_eq!(u.display(&abc.complement()), "D");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr_set;
mod enumerate;
pub mod kernels;
mod ops;
mod set_trie;
mod universe;

pub use attr_set::AttrSet;
pub use enumerate::{ImmediateSubsets, ImmediateSupersets, SubsetsOfSize};
pub use set_trie::{NodeId, SetTrie, SubsetsOf};
pub use universe::{ParseSetError, Universe};

/// Number of bits in one storage block of an [`AttrSet`].
pub(crate) const BLOCK_BITS: usize = 64;

/// Number of blocks an [`AttrSet`] stores inline (without heap allocation).
pub(crate) const INLINE_BLOCKS: usize = 2;

/// Largest universe size (in bits) that [`AttrSet`] stores inline: sets
/// over at most this many attributes are created, cloned, and combined
/// with **zero heap allocations**. Larger universes spill to a heap
/// vector with identical semantics.
pub const INLINE_BITS: usize = INLINE_BLOCKS * BLOCK_BITS;

/// Number of `u64` blocks needed to store `nbits` bits.
#[inline]
pub(crate) fn blocks_for(nbits: usize) -> usize {
    nbits.div_ceil(BLOCK_BITS)
}
