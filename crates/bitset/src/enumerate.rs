//! Lattice-walking enumeration helpers.
//!
//! The levelwise algorithm (Algorithm 9 of the paper) visits the subset
//! lattice one *level* (cardinality) at a time, and both algorithms need the
//! immediate neighbours of a set: its subsets of one smaller cardinality
//! (for candidate pruning) and its supersets of one larger cardinality (the
//! `width(L, ⪯)` successors of Theorem 12).

use crate::AttrSet;

/// Iterator over all subsets of a universe with a fixed cardinality `k`, in
/// lexicographic order of ascending index vectors.
///
/// This is the *level* `k` of the subset lattice; level iteration is how the
/// levelwise algorithm seeds its first candidate collection and how
/// brute-force reference implementations enumerate the lattice in tests.
pub struct SubsetsOfSize {
    nbits: usize,
    k: usize,
    /// Current combination as ascending indices; `None` once exhausted.
    indices: Option<Vec<usize>>,
}

impl SubsetsOfSize {
    /// All `k`-subsets of `{0, …, nbits−1}`.
    pub fn new(nbits: usize, k: usize) -> Self {
        let indices = if k <= nbits {
            Some((0..k).collect())
        } else {
            None
        };
        SubsetsOfSize { nbits, k, indices }
    }
}

impl Iterator for SubsetsOfSize {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        let indices = self.indices.as_mut()?;
        let result = AttrSet::from_indices(self.nbits, indices.iter().copied());
        // Advance to the next combination (standard odometer).
        if self.k == 0 {
            self.indices = None;
            return Some(result);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.indices = None;
                break;
            }
            i -= 1;
            if indices[i] < self.nbits - (self.k - i) {
                indices[i] += 1;
                for j in i + 1..self.k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

/// Iterator over the immediate subsets of a set (each obtained by removing
/// one member), ascending by the removed attribute.
pub struct ImmediateSubsets<'a> {
    set: &'a AttrSet,
    members: Vec<usize>,
    pos: usize,
}

impl<'a> ImmediateSubsets<'a> {
    /// Immediate subsets of `set`.
    pub fn new(set: &'a AttrSet) -> Self {
        ImmediateSubsets {
            set,
            members: set.to_vec(),
            pos: 0,
        }
    }
}

impl Iterator for ImmediateSubsets<'_> {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        let &attr = self.members.get(self.pos)?;
        self.pos += 1;
        let mut s = self.set.clone();
        s.remove(attr);
        Some(s)
    }
}

/// Iterator over the immediate supersets of a set (each obtained by adding
/// one non-member of the universe), ascending by the added attribute.
///
/// The number of immediate supersets is at most `n`, which is the paper's
/// `width(L, ⪯)` for the subset lattice (Theorem 12, Corollary 13).
pub struct ImmediateSupersets<'a> {
    set: &'a AttrSet,
    non_members: Vec<usize>,
    pos: usize,
}

impl<'a> ImmediateSupersets<'a> {
    /// Immediate supersets of `set` within its universe.
    pub fn new(set: &'a AttrSet) -> Self {
        ImmediateSupersets {
            set,
            non_members: set.complement().to_vec(),
            pos: 0,
        }
    }
}

impl Iterator for ImmediateSupersets<'_> {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        let &attr = self.non_members.get(self.pos)?;
        self.pos += 1;
        let mut s = self.set.clone();
        s.insert(attr);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binom(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn subsets_counts() {
        for n in 0..8 {
            for k in 0..=n + 1 {
                let got = SubsetsOfSize::new(n, k).count();
                assert_eq!(got, binom(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn subsets_of_size_zero() {
        let all: Vec<_> = SubsetsOfSize::new(5, 0).collect();
        assert_eq!(all, vec![AttrSet::empty(5)]);
    }

    #[test]
    fn subsets_lex_order_and_distinct() {
        let all: Vec<_> = SubsetsOfSize::new(5, 3).collect();
        assert_eq!(all.len(), 10);
        for w in all.windows(2) {
            assert!(w[0].cmp_lex(&w[1]).is_lt());
        }
        assert!(all.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn subsets_full_level() {
        let all: Vec<_> = SubsetsOfSize::new(4, 4).collect();
        assert_eq!(all, vec![AttrSet::full(4)]);
    }

    #[test]
    fn immediate_subsets_small() {
        let s = AttrSet::from_indices(4, [0, 2]);
        let subs: Vec<_> = ImmediateSubsets::new(&s).collect();
        assert_eq!(
            subs,
            vec![AttrSet::from_indices(4, [2]), AttrSet::from_indices(4, [0])]
        );
    }

    #[test]
    fn immediate_subsets_of_empty_is_empty() {
        let e = AttrSet::empty(4);
        assert_eq!(ImmediateSubsets::new(&e).count(), 0);
    }

    #[test]
    fn immediate_supersets_small() {
        let s = AttrSet::from_indices(4, [0, 2]);
        let sups: Vec<_> = ImmediateSupersets::new(&s).collect();
        assert_eq!(
            sups,
            vec![
                AttrSet::from_indices(4, [0, 1, 2]),
                AttrSet::from_indices(4, [0, 2, 3]),
            ]
        );
    }

    #[test]
    fn immediate_supersets_width_bound() {
        // width of the subset lattice is at most n (Theorem 12 setting).
        let s = AttrSet::from_indices(10, [1, 4]);
        assert_eq!(ImmediateSupersets::new(&s).count(), 8);
        let f = AttrSet::full(10);
        assert_eq!(ImmediateSupersets::new(&f).count(), 0);
    }
}
