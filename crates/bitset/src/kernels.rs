//! Public block-level streaming kernels for segmented vertical stores.
//!
//! The segmented vertical store (`dualminer-mining`'s `vstore`) keeps
//! per-item tidsets and per-node diffsets as bare `u64` runs, *outside*
//! any [`crate::AttrSet`] — the runs of one row segment are packed
//! contiguously so the miner can stream AND/ANDNOT + popcount over one
//! cache-resident segment at a time. These kernels are the inner loops of
//! that streaming pass: same-length slice in, count (and optionally the
//! materialized result) out, no allocation, no branching beyond the block
//! loop.
//!
//! The [`crate::AttrSet`]-level kernels in `ops.rs` stay `pub(crate)`;
//! this module is the deliberately small *public* slice-level surface the
//! store builds on. All functions assume `a.len() == b.len()` (and
//! `out.len() == a.len()` for the materializing variants) — the store
//! guarantees this because every run of one segment has the same block
//! count — and `debug_assert!` it.

/// Popcount of a block run.
#[inline]
pub fn popcount(a: &[u64]) -> usize {
    a.iter().map(|w| w.count_ones() as usize).sum()
}

/// `|a ∩ b|` without materializing the intersection.
#[inline]
pub fn and_len(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `|a ∩ b ∩ c|` without materializing anything — the three-way
/// popcount the arity-3 support fast path is made of.
#[inline]
pub fn and3_len(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((x, y), z)| (x & y & z).count_ones() as usize)
        .sum()
}

/// `|a ∩ b ∩ c ∩ d|` without materializing anything.
#[inline]
pub fn and4_len(a: &[u64], b: &[u64], c: &[u64], d: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len(), d.len());
    a.iter()
        .zip(b)
        .zip(c.iter().zip(d))
        .map(|((x, y), (z, w))| (x & y & z & w).count_ones() as usize)
        .sum()
}

/// `|a \ b|` without materializing the difference.
#[inline]
pub fn andnot_len(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum()
}

/// Writes `a ∩ b` into `out` and returns its popcount — the fused
/// count-and-materialize pass for tidset children.
#[inline]
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let mut count = 0usize;
    for ((x, y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        let w = x & y;
        *o = w;
        count += w.count_ones() as usize;
    }
    count
}

/// Writes `a \ b` into `out` and returns its popcount — the fused pass
/// for diffset children (`diff(parent, child)` is an ANDNOT either of two
/// tidsets or of two sibling diffsets).
#[inline]
pub fn andnot_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let mut count = 0usize;
    for ((x, y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        let w = x & !y;
        *o = w;
        count += w.count_ones() as usize;
    }
    count
}

/// Copies `a` into `out` and returns its popcount — the degenerate
/// materializing pass when the other operand contributes nothing (e.g. a
/// segment where the subtrahend diffset is empty).
#[inline]
pub fn copy_into(a: &[u64], out: &mut [u64]) -> usize {
    debug_assert_eq!(a.len(), out.len());
    out.copy_from_slice(a);
    popcount(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(bits: &[usize], blocks: usize) -> Vec<u64> {
        let mut v = vec![0u64; blocks];
        for &b in bits {
            v[b / 64] |= 1u64 << (b % 64);
        }
        v
    }

    #[test]
    fn count_kernels_agree_with_set_semantics() {
        let a = words(&[0, 3, 64, 65, 190], 3);
        let b = words(&[3, 64, 100, 191], 3);
        assert_eq!(popcount(&a), 5);
        assert_eq!(and_len(&a, &b), 2); // {3, 64}
        assert_eq!(andnot_len(&a, &b), 3); // {0, 65, 190}
        assert_eq!(andnot_len(&b, &a), 2); // {100, 191}
    }

    #[test]
    fn fused_kernels_match_count_only() {
        let a = words(&[1, 2, 63, 64, 127, 128], 3);
        let b = words(&[2, 64, 128, 129], 3);
        let mut out = vec![0u64; 3];
        assert_eq!(and_into(&a, &b, &mut out), and_len(&a, &b));
        assert_eq!(popcount(&out), and_len(&a, &b));
        assert_eq!(andnot_into(&a, &b, &mut out), andnot_len(&a, &b));
        assert_eq!(popcount(&out), andnot_len(&a, &b));
        assert_eq!(copy_into(&a, &mut out), popcount(&a));
        assert_eq!(out, a);
    }

    #[test]
    fn empty_runs() {
        assert_eq!(popcount(&[]), 0);
        assert_eq!(and_len(&[], &[]), 0);
        assert_eq!(andnot_len(&[], &[]), 0);
    }
}
