//! A set-trie: a prefix tree over ascending-index set representations.
//!
//! Families of sets — levels of the subset lattice, antichains of minimal
//! transversals, theories — keep asking the same two questions: *does the
//! family contain a subset of `x`?* and *does it contain a superset of
//! `x`?* Answering them by pairwise scan is `O(m)` subset tests per query,
//! the quadratic bottleneck of antichain minimization (Berge's per-edge
//! re-minimization, FK's irredundancy stripping) and of border derivation.
//!
//! The set-trie (Savnik's structure; the same idea powers the
//! Rymon-tree candidate indexes of frequent-set miners) stores each set as
//! the path of its members in ascending order. Because paths are sorted,
//! subset and superset queries become *pruned* depth-first searches:
//!
//! * `has_subset_of(x)` only ever descends edges labelled by members of
//!   `x` — the search space is the lattice of subsets of `x` that appear
//!   as trie paths, not the whole family;
//! * `has_superset_of(x)` must match the members of `x` in order and may
//!   skip over any other labels, stopping early because labels on any
//!   root-to-leaf path are strictly increasing.
//!
//! Both run in output-sensitive time: on sparse families they touch a
//! handful of nodes, and they never allocate. This module is the index
//! behind `minimize_family`/`maximize_family`, the prefix-join candidate
//! generator, and maximal-set/border derivation.

use crate::AttrSet;

/// Handle to a node of a [`SetTrie`] — exposed so lattice walkers (the
/// levelwise candidate generator) can reuse partial descents instead of
/// re-walking shared prefixes. Handles are only meaningful for the trie
/// that produced them and are invalidated by [`SetTrie::clear`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(u32);

#[derive(Clone, Debug)]
struct Node {
    /// Children as `(item, node)` pairs, sorted by item. Items along any
    /// root-to-leaf path are strictly increasing.
    children: Vec<(u32, u32)>,
    /// Whether the path ending here is a stored set.
    terminal: bool,
}

impl Node {
    fn new() -> Self {
        Node {
            children: Vec::new(),
            terminal: false,
        }
    }

    #[inline]
    fn child(&self, item: u32) -> Option<u32> {
        // Small fan-outs dominate in practice; binary search still wins on
        // the wide root of large-universe families.
        self.children
            .binary_search_by_key(&item, |&(v, _)| v)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// A prefix tree over ascending-index set representations with
/// subset/superset existence queries.
///
/// Sets are identified by their member *indices*; universes never enter
/// the structure, so sets from differently-sized universes can be mixed
/// freely (membership is index-based, exactly like
/// [`AttrSet::cmp_lex`] across universes).
///
/// # Example
///
/// ```
/// use dualminer_bitset::{AttrSet, SetTrie};
///
/// let mut trie = SetTrie::new();
/// trie.insert(&AttrSet::from_indices(8, [1, 3]));
/// trie.insert(&AttrSet::from_indices(8, [2, 5, 6]));
///
/// let x = AttrSet::from_indices(8, [1, 3, 7]);
/// assert!(trie.has_subset_of(&x)); // {1,3} ⊆ {1,3,7}
/// assert!(!trie.has_superset_of(&x));
/// assert!(trie.has_superset_of(&AttrSet::from_indices(8, [2, 6])));
/// ```
#[derive(Clone, Debug)]
pub struct SetTrie {
    /// Arena of nodes; index 0 is the root (the empty prefix).
    nodes: Vec<Node>,
    /// Number of stored (distinct) sets.
    len: usize,
}

impl Default for SetTrie {
    fn default() -> Self {
        SetTrie::new()
    }
}

impl SetTrie {
    /// An empty trie.
    pub fn new() -> Self {
        SetTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of distinct sets stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no set is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every stored set (the arena is reused).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new());
        self.len = 0;
    }

    /// The root node: the empty prefix.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Whether the path ending at `node` is a stored set.
    pub fn is_terminal(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].terminal
    }

    /// Follows the edge labelled `item` out of `node`, if present.
    pub fn descend(&self, node: NodeId, item: usize) -> Option<NodeId> {
        self.nodes[node.0 as usize].child(item as u32).map(NodeId)
    }

    /// Follows the edges labelled by `items` (which must be strictly
    /// ascending and all larger than the labels on the path to `node`).
    pub fn descend_slice(&self, node: NodeId, items: &[usize]) -> Option<NodeId> {
        let mut at = node;
        for &item in items {
            at = self.descend(at, item)?;
        }
        Some(at)
    }

    /// Inserts the set with the given strictly ascending member indices.
    /// Returns `true` if it was not already stored.
    pub fn insert_ascending<I: IntoIterator<Item = usize>>(&mut self, items: I) -> bool {
        let mut at = 0usize;
        let mut prev: Option<usize> = None;
        for item in items {
            debug_assert!(
                prev.map_or(true, |p| p < item),
                "insert_ascending requires strictly ascending indices"
            );
            prev = Some(item);
            let item = u32::try_from(item).expect("attribute index fits in u32");
            at = match self.nodes[at].child(item) {
                Some(c) => c as usize,
                None => {
                    let fresh = self.nodes.len();
                    let fresh_id = u32::try_from(fresh).expect("trie node count fits in u32");
                    self.nodes.push(Node::new());
                    let pos = self.nodes[at]
                        .children
                        .binary_search_by_key(&item, |&(v, _)| v)
                        .expect_err("child was just found absent");
                    self.nodes[at].children.insert(pos, (item, fresh_id));
                    fresh
                }
            };
        }
        let fresh = !self.nodes[at].terminal;
        self.nodes[at].terminal = true;
        self.len += usize::from(fresh);
        fresh
    }

    /// Inserts `s`. Returns `true` if it was not already stored.
    pub fn insert(&mut self, s: &AttrSet) -> bool {
        self.insert_ascending(s.iter())
    }

    /// Whether the set with the given strictly ascending member indices is
    /// stored.
    pub fn contains_ascending<I: IntoIterator<Item = usize>>(&self, items: I) -> bool {
        let mut at = self.root();
        for item in items {
            match self.descend(at, item) {
                Some(c) => at = c,
                None => return false,
            }
        }
        self.is_terminal(at)
    }

    /// Whether `s` is stored.
    pub fn contains(&self, s: &AttrSet) -> bool {
        self.contains_ascending(s.iter())
    }

    /// Whether some stored set is a subset of `x` (`∃ S ∈ trie: S ⊆ x`,
    /// including `S = x`).
    ///
    /// The search descends only edges labelled by members of `x`, so it
    /// explores the stored subsets of `x`'s power set — never the whole
    /// family.
    pub fn has_subset_of(&self, x: &AttrSet) -> bool {
        self.subset_rec(0, x)
    }

    fn subset_rec(&self, node: usize, x: &AttrSet) -> bool {
        let nd = &self.nodes[node];
        if nd.terminal {
            return true;
        }
        nd.children
            .iter()
            .any(|&(v, c)| x.contains(v as usize) && self.subset_rec(c as usize, x))
    }

    /// Whether some stored set is a superset of `x` (`∃ S ∈ trie: S ⊇ x`,
    /// including `S = x`).
    pub fn has_superset_of(&self, x: &AttrSet) -> bool {
        if self.len == 0 {
            return false;
        }
        let items: Vec<u32> = x.iter().map(|i| i as u32).collect();
        self.superset_rec(0, &items)
    }

    fn superset_rec(&self, node: usize, items: &[u32]) -> bool {
        // Every node lies on the path of at least one stored set (nodes are
        // only created by insertions and never removed), so once all of
        // `x`'s members are matched any reachable node suffices.
        let Some(&want) = items.first() else {
            return true;
        };
        for &(v, c) in &self.nodes[node].children {
            if v > want {
                // Labels below only grow; `want` can no longer be matched.
                return false;
            }
            let rest = if v == want { &items[1..] } else { items };
            if self.superset_rec(c as usize, rest) {
                return true;
            }
        }
        false
    }

    /// Whether some stored set is a **proper** superset of `x`
    /// (`∃ S ∈ trie: S ⊃ x, S ≠ x`).
    ///
    /// This is the maximality test of border derivation: a theory member is
    /// maximal iff the theory holds no proper superset of it.
    pub fn has_proper_superset_of(&self, x: &AttrSet) -> bool {
        if self.len == 0 {
            return false;
        }
        let items: Vec<u32> = x.iter().map(|i| i as u32).collect();
        self.proper_superset_rec(0, &items, false)
    }

    fn proper_superset_rec(&self, node: usize, items: &[u32], skipped: bool) -> bool {
        let Some(&want) = items.first() else {
            if skipped {
                // Already strictly larger than x; any stored set below
                // (and one exists, see `superset_rec`) is a witness.
                return true;
            }
            // The path so far spells exactly x: a witness must continue
            // strictly below this node. Any child's subtree stores a set.
            return !self.nodes[node].children.is_empty();
        };
        for &(v, c) in &self.nodes[node].children {
            if v > want {
                return false;
            }
            let (rest, skip) = if v == want {
                (&items[1..], skipped)
            } else {
                (items, true)
            };
            if self.proper_superset_rec(c as usize, rest, skip) {
                return true;
            }
        }
        false
    }

    /// Iterates over the stored subsets of `x`, in ascending-index
    /// lexicographic order, materialized over `x`'s universe.
    pub fn subsets_of<'a>(&'a self, x: &'a AttrSet) -> SubsetsOf<'a> {
        SubsetsOf {
            trie: self,
            x,
            stack: vec![(0, 0)],
            path: Vec::new(),
        }
    }
}

/// Iterator over the stored subsets of a query set — see
/// [`SetTrie::subsets_of`].
pub struct SubsetsOf<'a> {
    trie: &'a SetTrie,
    x: &'a AttrSet,
    /// DFS frames: `(node, cursor)`. Cursor 0 means the node's terminal
    /// flag has not been checked yet; cursor `i + 1` means children up to
    /// index `i` (exclusive) have been visited.
    stack: Vec<(u32, u32)>,
    /// Items along the current path.
    path: Vec<usize>,
}

impl Iterator for SubsetsOf<'_> {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        loop {
            let &mut (node, ref mut cursor) = self.stack.last_mut()?;
            let nd = &self.trie.nodes[node as usize];
            if *cursor == 0 {
                *cursor = 1;
                if nd.terminal {
                    return Some(AttrSet::from_indices(
                        self.x.universe_size(),
                        self.path.iter().copied(),
                    ));
                }
                continue;
            }
            let mut i = (*cursor - 1) as usize;
            while i < nd.children.len() && !self.x.contains(nd.children[i].0 as usize) {
                i += 1;
            }
            match nd.children.get(i) {
                Some(&(item, child)) => {
                    *cursor = (i + 2) as u32;
                    self.path.push(item as usize);
                    self.stack.push((child, 0));
                }
                None => {
                    self.stack.pop();
                    self.path.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: impl IntoIterator<Item = usize>) -> AttrSet {
        AttrSet::from_indices(16, items)
    }

    #[test]
    fn empty_trie_answers_no() {
        let trie = SetTrie::new();
        assert!(trie.is_empty());
        assert!(!trie.contains(&set([])));
        assert!(!trie.has_subset_of(&set([0, 1, 2])));
        assert!(!trie.has_superset_of(&set([])));
        assert!(!trie.has_proper_superset_of(&set([])));
        assert_eq!(trie.subsets_of(&set([0, 1])).count(), 0);
    }

    #[test]
    fn insert_contains_dedup() {
        let mut trie = SetTrie::new();
        assert!(trie.insert(&set([1, 3, 5])));
        assert!(!trie.insert(&set([1, 3, 5])));
        assert!(trie.insert(&set([1, 3])));
        assert!(trie.insert(&set([])));
        assert_eq!(trie.len(), 3);
        assert!(trie.contains(&set([1, 3, 5])));
        assert!(trie.contains(&set([1, 3])));
        assert!(trie.contains(&set([])));
        assert!(!trie.contains(&set([1])));
        assert!(!trie.contains(&set([1, 3, 5, 7])));
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let mut trie = SetTrie::new();
        trie.insert(&set([]));
        assert!(trie.has_subset_of(&set([])));
        assert!(trie.has_subset_of(&set([4, 9])));
        assert!(trie.has_superset_of(&set([])));
        assert!(!trie.has_proper_superset_of(&set([])));
    }

    #[test]
    fn subset_and_superset_queries() {
        let mut trie = SetTrie::new();
        trie.insert(&set([0, 2]));
        trie.insert(&set([1, 2, 3]));
        trie.insert(&set([5]));

        assert!(trie.has_subset_of(&set([0, 2, 7])));
        assert!(trie.has_subset_of(&set([0, 2])));
        assert!(!trie.has_subset_of(&set([0, 1, 3])));
        assert!(trie.has_subset_of(&set([5, 6])));

        assert!(trie.has_superset_of(&set([1, 3])));
        assert!(trie.has_superset_of(&set([2])));
        assert!(trie.has_superset_of(&set([5])));
        assert!(!trie.has_superset_of(&set([0, 1])));
        assert!(!trie.has_superset_of(&set([6])));
    }

    #[test]
    fn proper_superset_excludes_the_set_itself() {
        let mut trie = SetTrie::new();
        trie.insert(&set([0, 2]));
        assert!(trie.has_superset_of(&set([0, 2])));
        assert!(!trie.has_proper_superset_of(&set([0, 2])));
        trie.insert(&set([0, 2, 4]));
        assert!(trie.has_proper_superset_of(&set([0, 2])));
        assert!(trie.has_proper_superset_of(&set([0, 4])));
        assert!(!trie.has_proper_superset_of(&set([0, 2, 4])));
        // A same-cardinality non-member is not a proper superset.
        assert!(!trie.has_proper_superset_of(&set([0, 3, 4])));
    }

    #[test]
    fn prefix_of_stored_set_is_not_contained() {
        let mut trie = SetTrie::new();
        trie.insert(&set([2, 4, 6]));
        assert!(!trie.contains(&set([2, 4])));
        assert!(!trie.has_subset_of(&set([2, 4])));
        assert!(trie.has_superset_of(&set([2, 4])));
        assert!(trie.has_proper_superset_of(&set([2, 4])));
    }

    #[test]
    fn subsets_of_yields_lex_order() {
        let mut trie = SetTrie::new();
        for s in [
            vec![],
            vec![0],
            vec![0, 1],
            vec![0, 5],
            vec![1, 2],
            vec![3],
            vec![0, 1, 5],
        ] {
            trie.insert(&set(s));
        }
        let x = set([0, 1, 5]);
        let got: Vec<Vec<usize>> = trie.subsets_of(&x).map(|s| s.to_vec()).collect();
        assert_eq!(
            got,
            vec![vec![], vec![0], vec![0, 1], vec![0, 1, 5], vec![0, 5]]
        );
    }

    #[test]
    fn descend_and_terminal_navigation() {
        let mut trie = SetTrie::new();
        trie.insert(&set([1, 4]));
        let root = trie.root();
        let n1 = trie.descend(root, 1).unwrap();
        assert!(!trie.is_terminal(n1));
        let n14 = trie.descend(n1, 4).unwrap();
        assert!(trie.is_terminal(n14));
        assert!(trie.descend(root, 2).is_none());
        assert_eq!(trie.descend_slice(root, &[1, 4]), Some(n14));
        assert_eq!(trie.descend_slice(root, &[1, 5]), None);
    }

    #[test]
    fn clear_resets() {
        let mut trie = SetTrie::new();
        trie.insert(&set([1, 2]));
        trie.clear();
        assert!(trie.is_empty());
        assert!(!trie.has_subset_of(&set([1, 2, 3])));
        assert!(trie.insert(&set([1, 2])));
    }

    #[test]
    fn cross_universe_queries_are_index_based() {
        let mut trie = SetTrie::new();
        trie.insert(&AttrSet::from_indices(300, [1, 200]));
        assert!(trie.has_superset_of(&AttrSet::from_indices(8, [1])));
        assert!(!trie.has_subset_of(&AttrSet::from_indices(8, [1])));
        assert!(trie.has_subset_of(&AttrSet::from_indices(256, [1, 200, 255])));
    }
}
