//! Block-level kernels and operator-trait sugar for [`AttrSet`].
//!
//! # Kernels
//!
//! The slice-level inner loops every multi-block (spilled) set operation
//! compiles down to. They are deliberately *non-materializing* where
//! possible: [`intersection_len_blocks`], [`intersection_len3_blocks`],
//! [`is_disjoint_blocks`], and [`is_subset_blocks`] answer questions about
//! a combination of sets without ever building it, and
//! [`intersect_returning_len_blocks`] fuses the write and the popcount into
//! one pass. `AttrSet`'s public methods dispatch here for heap-backed sets
//! and use fully unrolled two-word arms for inline sets (see
//! `attr_set.rs`); DESIGN.md §9 has the inventory and the rules for adding
//! new kernels.
//!
//! All kernels assume same-length slices — `AttrSet` guarantees this for
//! same-universe operands — and simply ignore any excess tail on the longer
//! operand (`zip` semantics), which only [`cmp_lex_blocks`] must handle
//! explicitly because it accepts operands from different universes.
//!
//! # Operators
//!
//! `&a | &b`, `&a & &b`, `&a - &b`, `&a ^ &b`, and `!&a` (complement in the
//! universe). All operators panic on universe mismatch, like the named
//! methods they delegate to.

use std::cmp::Ordering;
use std::ops::{BitAnd, BitOr, BitXor, Not, Sub};

use crate::AttrSet;

/// In-place union over block slices: `a |= b`.
#[inline]
pub(crate) fn union_blocks(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x |= *y;
    }
}

/// In-place intersection over block slices: `a &= b`.
#[inline]
pub(crate) fn intersect_blocks(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x &= *y;
    }
}

/// In-place difference over block slices: `a &= !b`.
#[inline]
pub(crate) fn difference_blocks(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x &= !*y;
    }
}

/// In-place symmetric difference over block slices: `a ^= b`.
#[inline]
pub(crate) fn symmetric_difference_blocks(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x ^= *y;
    }
}

/// Popcount of `a ∩ b` without materializing the intersection.
#[inline]
pub(crate) fn intersection_len_blocks(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Popcount of the three-way intersection `a ∩ b ∩ c` in a single pass.
#[inline]
pub(crate) fn intersection_len3_blocks(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((x, y), z)| (x & y & z).count_ones() as usize)
        .sum()
}

/// Whether `a ∩ b = ∅`, short-circuiting on the first shared block.
#[inline]
pub(crate) fn is_disjoint_blocks(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// Whether `a ⊆ b`, short-circuiting on the first excess block.
#[inline]
pub(crate) fn is_subset_blocks(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Fused `a &= b` returning the popcount of the result — one pass instead
/// of an intersection pass followed by a count pass.
#[inline]
pub(crate) fn intersect_returning_len_blocks(a: &mut [u64], b: &[u64]) -> usize {
    let mut len = 0usize;
    for (x, y) in a.iter_mut().zip(b) {
        *x &= *y;
        len += x.count_ones() as usize;
    }
    len
}

/// Lexicographic comparison by ascending attribute indices, block-wise.
///
/// At the lowest differing bit `i` (both sets agree below `i`), the set
/// containing `i` places attribute `i` where the other set's next member is
/// larger — so the owner is smaller — *unless* the other set has no member
/// above `i` at all, making it a strict prefix, hence smaller. This is the
/// branch-free replacement for walking both iterators bit by bit.
///
/// Operands may come from different universes (the iterator semantics never
/// checked), so differing slice lengths are handled by treating missing
/// blocks as zero.
pub(crate) fn cmp_lex_blocks(a: &[u64], b: &[u64]) -> Ordering {
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x == y {
            continue;
        }
        let low = (x ^ y).trailing_zeros();
        // Bits of x and y below `low` are identical; decide by who owns
        // `low` and whether the non-owner still has members above it.
        let (owner_is_a, non_owner_rest) = if x >> low & 1 == 1 {
            (true, (y >> low) >> 1 != 0 || tail_nonzero(b, i + 1))
        } else {
            (false, (x >> low) >> 1 != 0 || tail_nonzero(a, i + 1))
        };
        let owner_order = if non_owner_rest {
            Ordering::Less
        } else {
            Ordering::Greater
        };
        return if owner_is_a {
            owner_order
        } else {
            owner_order.reverse()
        };
    }
    Ordering::Equal
}

/// Whether any block of `s` from `from` onward is nonzero.
#[inline]
fn tail_nonzero(s: &[u64], from: usize) -> bool {
    s.get(from..).is_some_and(|t| t.iter().any(|&w| w != 0))
}

impl BitOr for &AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: &AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl BitAnd for &AttrSet {
    type Output = AttrSet;
    fn bitand(self, rhs: &AttrSet) -> AttrSet {
        self.intersection(rhs)
    }
}

impl Sub for &AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: &AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl BitXor for &AttrSet {
    type Output = AttrSet;
    fn bitxor(self, rhs: &AttrSet) -> AttrSet {
        self.symmetric_difference(rhs)
    }
}

impl Not for &AttrSet {
    type Output = AttrSet;
    fn not(self) -> AttrSet {
        self.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrSet;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(6, v.iter().copied())
    }

    #[test]
    fn operators_match_methods() {
        let a = s(&[0, 1, 2]);
        let b = s(&[1, 3]);
        assert_eq!(&a | &b, a.union(&b));
        assert_eq!(&a & &b, a.intersection(&b));
        assert_eq!(&a - &b, a.difference(&b));
        assert_eq!(&a ^ &b, a.symmetric_difference(&b));
        assert_eq!(!&a, a.complement());
    }

    #[test]
    fn de_morgan_via_operators() {
        let a = s(&[0, 4]);
        let b = s(&[4, 5]);
        assert_eq!(!&(&a | &b), &(!&a) & &(!&b));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn operators_check_universe() {
        let _ = &s(&[0]) | &AttrSet::empty(7);
    }

    /// Reference implementation of lexicographic order: walk both member
    /// iterators (the pre-kernel `cmp_lex`).
    fn cmp_lex_reference(a: &AttrSet, b: &AttrSet) -> Ordering {
        let mut x = a.iter();
        let mut y = b.iter();
        loop {
            match (x.next(), y.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(p), Some(q)) => match p.cmp(&q) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    #[test]
    fn cmp_lex_blocks_matches_iterator_walk() {
        // Exhaustive over a 10-bit universe: every pair of subsets.
        let n = 10usize;
        let sets: Vec<AttrSet> = (0u32..1 << n)
            .map(|bits| AttrSet::from_indices(n, (0..n).filter(|i| bits >> i & 1 == 1)))
            .collect();
        for a in sets.iter().step_by(7) {
            for b in sets.iter().step_by(5) {
                assert_eq!(a.cmp_lex(b), cmp_lex_reference(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn cmp_lex_blocks_cross_universe_lengths() {
        // cmp_lex never required equal universes; differing block counts
        // must behave as if padded with zeros.
        let a = AttrSet::from_indices(40, [3, 38]);
        let b = AttrSet::from_indices(400, [3, 38]);
        assert_eq!(a.cmp_lex(&b), Ordering::Equal);
        let c = AttrSet::from_indices(400, [3, 38, 290]);
        assert_eq!(a.cmp_lex(&c), Ordering::Less);
        assert_eq!(c.cmp_lex(&a), Ordering::Greater);
        let d = AttrSet::from_indices(400, [2]);
        assert_eq!(d.cmp_lex(&a), Ordering::Less);
    }
}
