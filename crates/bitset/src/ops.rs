//! Operator-trait sugar for [`AttrSet`]: `&a | &b`, `&a & &b`, `&a - &b`,
//! `&a ^ &b`, and `!&a` (complement in the universe).
//!
//! All operators panic on universe mismatch, like the named methods they
//! delegate to.

use std::ops::{BitAnd, BitOr, BitXor, Not, Sub};

use crate::AttrSet;

impl BitOr for &AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: &AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl BitAnd for &AttrSet {
    type Output = AttrSet;
    fn bitand(self, rhs: &AttrSet) -> AttrSet {
        self.intersection(rhs)
    }
}

impl Sub for &AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: &AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl BitXor for &AttrSet {
    type Output = AttrSet;
    fn bitxor(self, rhs: &AttrSet) -> AttrSet {
        self.symmetric_difference(rhs)
    }
}

impl Not for &AttrSet {
    type Output = AttrSet;
    fn not(self) -> AttrSet {
        self.complement()
    }
}

#[cfg(test)]
mod tests {
    use crate::AttrSet;

    fn s(v: &[usize]) -> AttrSet {
        AttrSet::from_indices(6, v.iter().copied())
    }

    #[test]
    fn operators_match_methods() {
        let a = s(&[0, 1, 2]);
        let b = s(&[1, 3]);
        assert_eq!(&a | &b, a.union(&b));
        assert_eq!(&a & &b, a.intersection(&b));
        assert_eq!(&a - &b, a.difference(&b));
        assert_eq!(&a ^ &b, a.symmetric_difference(&b));
        assert_eq!(!&a, a.complement());
    }

    #[test]
    fn de_morgan_via_operators() {
        let a = s(&[0, 4]);
        let b = s(&[4, 5]);
        assert_eq!(!&(&a | &b), &(!&a) & &(!&b));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn operators_check_universe() {
        let _ = &s(&[0]) | &AttrSet::empty(7);
    }
}
